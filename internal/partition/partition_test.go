package partition

import (
	"testing"
	"testing/quick"

	"lcigraph/internal/graph"
)

func policies() []Policy { return []Policy{EdgeCut, VertexCut} }

// checkInvariants validates the core partitioning invariants for any graph
// and host count:
//  1. every global edge is assigned to exactly one host,
//  2. every vertex has exactly one master (on its owner),
//  3. masters precede mirrors in the local id space,
//  4. the per-pair sync lists are global-id aligned.
func checkInvariants(t *testing.T, g *graph.Graph, p int, pol Policy) {
	t.Helper()
	pt := Build(g, p, pol)

	// (1) edge conservation.
	type ge struct{ s, d uint32 }
	global := map[ge]int{}
	for v := 0; v < g.N; v++ {
		for _, d := range g.Neighbors(v) {
			global[ge{uint32(v), d}]++
		}
	}
	seen := map[ge]int{}
	for _, hg := range pt.Hosts {
		for lv := 0; lv < hg.NumLocal; lv++ {
			for _, ld := range hg.Local.Neighbors(lv) {
				seen[ge{hg.L2G[lv], hg.L2G[ld]}]++
			}
		}
	}
	if len(seen) != len(global) {
		t.Fatalf("%v/P=%d: %d distinct edges partitioned, want %d", pol, p, len(seen), len(global))
	}
	for e, c := range global {
		if seen[e] != c {
			t.Fatalf("%v/P=%d: edge %v count %d, want %d", pol, p, e, seen[e], c)
		}
	}

	// (2) unique master on the owner; (3) layout.
	masterCount := make([]int, g.N)
	for _, hg := range pt.Hosts {
		for l, gid := range hg.L2G {
			isM := l < hg.NumMasters
			if isM {
				masterCount[gid]++
				if pt.Owner(gid) != hg.Host {
					t.Fatalf("%v: master of %d on non-owner %d", pol, gid, hg.Host)
				}
				if hg.OwnerOf[l] != hg.Host {
					t.Fatalf("%v: OwnerOf wrong for master", pol)
				}
			} else if pt.Owner(gid) == hg.Host {
				t.Fatalf("%v: owned vertex %d stored as mirror", pol, gid)
			}
			if l2, ok := hg.G2L(gid); !ok || int(l2) != l {
				t.Fatalf("%v: G2L(L2G) not identity", pol)
			}
		}
	}
	for v, c := range masterCount {
		if c != 1 {
			t.Fatalf("%v/P=%d: vertex %d has %d masters", pol, p, v, c)
		}
	}

	// (4) sync-list alignment: host h's MirrorsHere[m] corresponds
	// global-id-wise to host m's MastersFor[h], ascending.
	for h, hg := range pt.Hosts {
		for m := 0; m < p; m++ {
			mine := hg.MirrorsHere[m]
			theirs := pt.Hosts[m].MastersFor[h]
			if len(mine) != len(theirs) {
				t.Fatalf("%v: list sizes differ for pair (%d,%d): %d vs %d",
					pol, h, m, len(mine), len(theirs))
			}
			prev := -1
			for i := range mine {
				gm := hg.L2G[mine[i]]
				gt := pt.Hosts[m].L2G[theirs[i]]
				if gm != gt {
					t.Fatalf("%v: pair (%d,%d) misaligned at %d: %d vs %d",
						pol, h, m, i, gm, gt)
				}
				if int(gm) <= prev {
					t.Fatalf("%v: list not ascending", pol)
				}
				prev = int(gm)
				if hg.IsMaster(mine[i]) {
					t.Fatalf("%v: MirrorsHere contains a master", pol)
				}
				if !pt.Hosts[m].IsMaster(theirs[i]) {
					t.Fatalf("%v: MastersFor contains a mirror", pol)
				}
			}
		}
		// No self lists.
		if len(hg.MirrorsHere[h]) != 0 || len(hg.MastersFor[h]) != 0 {
			t.Fatalf("%v: host %d has self sync lists", pol, h)
		}
	}
}

func TestInvariantsSmallGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(17),
		"ring":     graph.Ring(16),
		"complete": graph.Complete(9),
		"rmat":     graph.RMAT(7, 8, 3, 8),
		"web":      graph.Web(7, 6, 9, 0),
		"empty":    graph.FromEdges(8, nil),
	}
	for name, g := range graphs {
		for _, p := range []int{1, 2, 3, 4, 6} {
			for _, pol := range policies() {
				t.Run(name, func(t *testing.T) { checkInvariants(t, g, p, pol) })
			}
		}
	}
}

func TestEdgeCutKeepsSourcesLocal(t *testing.T) {
	g := graph.RMAT(8, 8, 1, 0)
	pt := Build(g, 4, EdgeCut)
	for _, hg := range pt.Hosts {
		for lv := 0; lv < hg.NumLocal; lv++ {
			if hg.Local.Degree(lv) > 0 && !hg.IsMaster(uint32(lv)) {
				t.Fatalf("edge-cut: mirror %d has out-edges on host %d", lv, hg.Host)
			}
		}
	}
	if EdgeCut.NeedsBroadcast() {
		t.Fatal("edge-cut must not need broadcast for push operators")
	}
	if !VertexCut.NeedsBroadcast() {
		t.Fatal("vertex-cut must need broadcast for push operators")
	}
}

func TestEdgeBalance(t *testing.T) {
	g := graph.Kron(10, 8, 2, 0)
	for _, pol := range policies() {
		pt := Build(g, 4, pol)
		var min, max int64 = 1 << 62, 0
		for _, hg := range pt.Hosts {
			e := hg.Local.NumEdges()
			if e < min {
				min = e
			}
			if e > max {
				max = e
			}
		}
		// Power-law graphs cannot balance perfectly; allow generous slack.
		if max > 8*(min+1) {
			t.Errorf("%v: edge imbalance min=%d max=%d", pol, min, max)
		}
	}
}

func TestVertexCutReducesMaxReplication(t *testing.T) {
	// On a complete-ish skewed graph the edge-cut makes every vertex a
	// mirror nearly everywhere; the 2D cut bounds replication by r+c-1.
	g := graph.Complete(32)
	ec := Build(g, 4, EdgeCut)
	vc := Build(g, 4, VertexCut)
	repl := func(pt *Partitioned) int {
		total := 0
		for _, hg := range pt.Hosts {
			total += hg.NumLocal
		}
		return total
	}
	if repl(vc) > repl(ec) {
		t.Errorf("vertex cut replicated more proxies (%d) than edge cut (%d) on dense graph",
			repl(vc), repl(ec))
	}
}

func TestSingleHostDegenerate(t *testing.T) {
	g := graph.RMAT(6, 8, 1, 4)
	for _, pol := range policies() {
		pt := Build(g, 1, pol)
		hg := pt.Hosts[0]
		if hg.NumMasters != g.N || hg.NumLocal != g.N {
			t.Fatalf("%v: single host should own everything", pol)
		}
		if hg.Local.NumEdges() != g.NumEdges() {
			t.Fatalf("%v: lost edges", pol)
		}
	}
}

func TestGridFactorization(t *testing.T) {
	for _, tc := range []struct{ p, r, c int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {9, 3, 3}, {12, 3, 4}, {7, 1, 7},
	} {
		r, c := grid(tc.p)
		if r != tc.r || c != tc.c {
			t.Errorf("grid(%d) = %d×%d, want %d×%d", tc.p, r, c, tc.r, tc.c)
		}
	}
}

func TestMetrics(t *testing.T) {
	g := graph.Complete(16)
	for _, pol := range policies() {
		pt := Build(g, 4, pol)
		m := pt.MeasureMetrics()
		if m.P != 4 || m.Policy != pol {
			t.Fatalf("identity fields wrong: %+v", m)
		}
		if m.Replication < 1.0 {
			t.Fatalf("replication %f < 1", m.Replication)
		}
		if m.EdgeMin > m.EdgeMax {
			t.Fatalf("edge bounds inverted: %+v", m)
		}
		var total int64
		for _, hg := range pt.Hosts {
			total += int64(hg.NumLocal - hg.NumMasters)
		}
		if m.SyncPairs != total {
			t.Fatalf("sync pairs %d, want %d", m.SyncPairs, total)
		}
	}
	// Cartesian vertex cut bounds per-vertex replication by r+c-1.
	vc := Build(g, 4, VertexCut).MeasureMetrics()
	if vc.MaxMirrors > 3 { // 2x2 grid: r+c-1 = 3
		t.Fatalf("vertex-cut max mirrors %d exceeds r+c-1", vc.MaxMirrors)
	}
	// Single host: no mirrors at all.
	solo := Build(g, 1, EdgeCut).MeasureMetrics()
	if solo.Replication != 1.0 || solo.SyncPairs != 0 || solo.MaxMirrors != 0 {
		t.Fatalf("single-host metrics: %+v", solo)
	}
}

// TestQuickRandomGraphs runs the invariant suite over random graphs.
func TestQuickRandomGraphs(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := int(pRaw)%6 + 1
		g := graph.RMAT(6, 4, seed, 4)
		for _, pol := range policies() {
			pt := Build(g, p, pol)
			// Cheap subset of invariants for speed: edge conservation.
			var total int64
			for _, hg := range pt.Hosts {
				total += hg.Local.NumEdges()
			}
			if total != g.NumEdges() {
				return false
			}
			masters := 0
			for _, hg := range pt.Hosts {
				masters += hg.NumMasters
			}
			if masters != g.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildVertexCut(b *testing.B) {
	g := graph.RMAT(12, 8, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, 8, VertexCut)
	}
}
