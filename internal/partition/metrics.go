package partition

import (
	"fmt"
	"strings"
)

// Metrics summarize a partitioning's quality: the quantities that determine
// communication volume in §II's proxy model.
type Metrics struct {
	Policy Policy
	P      int
	// Replication is the average number of proxies per vertex (1.0 = no
	// mirrors anywhere).
	Replication float64
	// MaxMirrors is the largest mirror count of any single vertex.
	MaxMirrors int
	// EdgeMin/EdgeMax are the smallest and largest per-host edge counts.
	EdgeMin, EdgeMax int64
	// SyncPairs counts (mirror, master) relationships = values moved per
	// all-updated reduce round.
	SyncPairs int64
}

// MeasureMetrics computes partitioning-quality metrics.
func (pt *Partitioned) MeasureMetrics() Metrics {
	m := Metrics{Policy: pt.Policy, P: pt.P, EdgeMin: 1 << 62}
	var proxies int64
	mirrorCount := make([]int, pt.GlobalN)
	for _, hg := range pt.Hosts {
		proxies += int64(hg.NumLocal)
		e := hg.Local.NumEdges()
		if e < m.EdgeMin {
			m.EdgeMin = e
		}
		if e > m.EdgeMax {
			m.EdgeMax = e
		}
		for l := hg.NumMasters; l < hg.NumLocal; l++ {
			mirrorCount[hg.L2G[l]]++
			m.SyncPairs++
		}
	}
	if pt.GlobalN > 0 {
		m.Replication = float64(proxies) / float64(pt.GlobalN)
	}
	for _, c := range mirrorCount {
		if c > m.MaxMirrors {
			m.MaxMirrors = c
		}
	}
	return m
}

// String renders the metrics as one aligned line.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s P=%-3d repl=%.2f maxMirrors=%-4d edges[min=%d max=%d] syncPairs=%d",
		m.Policy, m.P, m.Replication, m.MaxMirrors, m.EdgeMin, m.EdgeMax, m.SyncPairs)
	return b.String()
}
