// Package parallel provides each simulated host's compute-thread pool.
//
// The paper's runtimes run one dedicated communication thread plus T
// compute threads per host; compute threads execute the operator phase and
// the parallel gathers/scatters. Pool reproduces that structure: a fixed
// set of worker goroutines with a fork-join For.
package parallel

import (
	"sync"
)

// Pool is a fixed-size fork-join worker pool. The zero value is not usable;
// construct with NewPool. Close releases the workers.
type Pool struct {
	n     int
	tasks chan task
	wg    sync.WaitGroup
}

type task struct {
	lo, hi int
	fn     func(lo, hi int)
	done   *sync.WaitGroup
}

// NewPool starts a pool of n workers (minimum 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n, tasks: make(chan task, n)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.fn(t.lo, t.hi)
				t.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.n }

// For runs fn(i) for every i in [0, n), split across the workers, and
// returns when all calls finish. fn must be safe for concurrent invocation
// on disjoint indices.
func (p *Pool) For(n int, fn func(i int)) {
	p.ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForRange splits [0, n) into one contiguous chunk per worker and runs
// fn(lo, hi) on each, returning when all finish.
func (p *Pool) ForRange(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.n
	if chunks > n {
		chunks = n
	}
	var done sync.WaitGroup
	done.Add(chunks)
	size := (n + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		p.tasks <- task{lo: lo, hi: hi, fn: fn, done: &done}
	}
	done.Wait()
}

// Close shuts the workers down. The pool is unusable afterwards.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
