package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 1000
	var hits [n]atomic.Int32
	p.For(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
}

func TestForRangeChunks(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	var calls atomic.Int32
	p.ForRange(100, func(lo, hi int) {
		calls.Add(1)
		for i := lo; i < hi; i++ {
			total.Add(int64(i))
		}
	})
	if total.Load() != 99*100/2 {
		t.Fatalf("sum = %d", total.Load())
	}
	if c := calls.Load(); c != 3 {
		t.Fatalf("chunks = %d, want 3", c)
	}
}

func TestEdgeCases(t *testing.T) {
	p := NewPool(0) // clamps to 1
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("workers = %d", p.Workers())
	}
	p.For(0, func(int) { t.Fatal("called for n=0") })
	p.ForRange(-5, func(int, int) { t.Fatal("called for negative n") })
	// n < workers: no empty chunks, no panic.
	p2 := NewPool(8)
	defer p2.Close()
	var c atomic.Int32
	p2.For(3, func(int) { c.Add(1) })
	if c.Load() != 3 {
		t.Fatalf("visited %d", c.Load())
	}
}

func TestNestedUseIsSequentialButSafe(t *testing.T) {
	// Reentrant For from a worker must not deadlock as long as chunks
	// don't exceed queue capacity; the engines never nest, but a stray
	// nested call should not corrupt coverage of the outer loop.
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	p.For(2, func(i int) {
		total.Add(1)
	})
	if total.Load() != 2 {
		t.Fatal("outer loop incomplete")
	}
}

func TestQuickSumMatchesSerial(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	f := func(vals []int32) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		var got atomic.Int64
		p.For(len(vals), func(i int) { got.Add(int64(vals[i])) })
		return got.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		p.ForRange(1024, func(lo, hi int) {})
	}
}
