# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-datapath bench-netfabric bench-serving launch serve experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/...

bench:
	go test -bench=. -benchmem ./...

# Regenerates the committed before/after report for the batched/pooled
# data path (frame pooling + eager coalescing).
bench-datapath:
	go run ./cmd/experiments -datapath -datapath-out BENCH_datapath.json

# Regenerates the committed transport comparison: the same LCI exchange
# over the in-process simulator vs real loopback UDP sockets.
bench-netfabric:
	go run ./cmd/experiments -netfabric -netfabric-out BENCH_netfabric.json

# Regenerates the committed serving soak report: 4 resident ranks over
# loopback UDP, open-loop client load, best of 3 trials by p99.
bench-serving:
	go run ./cmd/lci-serve -n 4 -graph web -scale 12 -soak -qps 300 -duration 5s -repeat 3 -out BENCH_serving.json

# Multi-process smoke run: 4 OS processes over loopback UDP.
launch:
	go run ./cmd/lci-launch -n 4 -apps bfs,pagerank -graph web -scale 10

# Long-lived serving job: 4 resident ranks, clients on a TCP endpoint,
# live metrics on 9380+r. Ctrl-C drains gracefully.
serve:
	go run ./cmd/lci-serve -n 4 -graph web -scale 12 -metrics-addr 127.0.0.1:9380

# Regenerates every table and figure of the paper plus the extensions.
experiments:
	go run ./cmd/experiments -all -ablations -portability -alltoall -thread-scaling

examples:
	go run ./examples/quickstart
	go run ./examples/layers
	go run ./examples/exhaustion
	go run ./examples/bfs-gemini
	go run ./examples/pagerank
	go run ./examples/delta-stepping

clean:
	go clean ./...
