# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-datapath bench-netfabric launch experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/...

bench:
	go test -bench=. -benchmem ./...

# Regenerates the committed before/after report for the batched/pooled
# data path (frame pooling + eager coalescing).
bench-datapath:
	go run ./cmd/experiments -datapath -datapath-out BENCH_datapath.json

# Regenerates the committed transport comparison: the same LCI exchange
# over the in-process simulator vs real loopback UDP sockets.
bench-netfabric:
	go run ./cmd/experiments -netfabric -netfabric-out BENCH_netfabric.json

# Multi-process smoke run: 4 OS processes over loopback UDP.
launch:
	go run ./cmd/lci-launch -n 4 -apps bfs,pagerank -graph web -scale 10

# Regenerates every table and figure of the paper plus the extensions.
experiments:
	go run ./cmd/experiments -all -ablations -portability -alltoall -thread-scaling

examples:
	go run ./examples/quickstart
	go run ./examples/layers
	go run ./examples/exhaustion
	go run ./examples/bfs-gemini
	go run ./examples/pagerank
	go run ./examples/delta-stepping

clean:
	go clean ./...
