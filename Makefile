# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/...

bench:
	go test -bench=. -benchmem ./...

# Regenerates every table and figure of the paper plus the extensions.
experiments:
	go run ./cmd/experiments -all -ablations -portability -alltoall -thread-scaling

examples:
	go run ./examples/quickstart
	go run ./examples/layers
	go run ./examples/exhaustion
	go run ./examples/bfs-gemini
	go run ./examples/pagerank
	go run ./examples/delta-stepping

clean:
	go clean ./...
