// Command lci-launch runs an SPMD graph-analytics job as P real OS
// processes connected by the UDP fabric provider (internal/netfabric) over
// loopback — the repo's closest analogue to the paper's multi-host runs.
//
// The parent process binds every rank's UDP socket first (so there is no
// startup race), then re-executes itself P times with the rank, the full
// address list and the pre-bound socket (as an inherited file descriptor)
// in the environment. Each child builds the same graph and partition
// deterministically, runs the requested apps over an LCI layer on the UDP
// provider, verifies its masters against the single-host oracle, and the
// job agrees on the global verdict with an Allreduce that itself rides the
// communication layer (cluster.RunRank).
//
// Usage:
//
//	lci-launch -n 4 -apps bfs,pagerank -graph web -scale 10
//	lci-launch -n 4 -apps bfs -loss 0.05 -dup 0.02 -reorder 0.02
//	lci-launch -n 4 -metrics-addr 127.0.0.1:9380 -repeat 50
//
// With -metrics-addr the parent pre-binds one TCP listener per rank (rank r
// serves on port+r; port 0 picks ephemeral ports) and each child serves its
// telemetry registry there: /metrics (Prometheus text), /metrics.json,
// /debug/pprof/*, and on rank 0 /cluster + /cluster.json, which scrape every
// peer and merge. At exit the job gathers all ranks' snapshots over the
// communication layer itself and rank 0 prints the cluster-wide report
// (with -v) and writes it as JSON (with -metrics-out).
//
// With -trace-out (or LCI_TRACE=1 in the environment) every rank records
// message-lifecycle events into its tracing ring; the same HTTP endpoint
// additionally serves /debug/trace (Chrome trace-event JSON, merged across
// ranks on rank 0) and /debug/trace/flight (flight-recorder text dump). At
// exit the per-rank traces are gathered over the communication layer and
// rank 0 writes one merged timeline to -trace-out — load it in Perfetto or
// chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"lcigraph/internal/abelian"
	"lcigraph/internal/apps"
	"lcigraph/internal/bench"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	"lcigraph/internal/graph"
	"lcigraph/internal/health"
	"lcigraph/internal/incident"
	"lcigraph/internal/launch"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/partition"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

type options struct {
	n           int
	apps        string
	graph       string
	scale       int
	seed        int64
	threads     int
	shards      int
	source      uint
	prIters     int
	repeat      int
	loss        float64
	dup         float64
	reorder     float64
	faultSeed   int64
	verbose     bool
	metricsAddr string
	metricsOut  string
	traceOut    string
	opsLog      string
	injectStall string
	incidentDir string
	profPeriod  string
}

func parseFlags() *options {
	o := &options{}
	flag.IntVar(&o.n, "n", 4, "number of ranks (OS processes)")
	flag.StringVar(&o.apps, "apps", "bfs,pagerank", "comma-separated apps: bfs,pagerank,cc,sssp")
	flag.StringVar(&o.graph, "graph", "web", "graph family: rmat | kron | web")
	flag.IntVar(&o.scale, "scale", 10, "graph scale (2^scale vertices)")
	flag.Int64Var(&o.seed, "seed", 42, "graph generator seed")
	flag.IntVar(&o.threads, "threads", 2, "compute threads per rank")
	flag.IntVar(&o.shards, "shards", 0,
		"progress shards per rank (sets LCI_ENDPOINT_SHARDS; 0 = inherit env, default 1)")
	flag.UintVar(&o.source, "source", 0, "bfs/sssp source vertex")
	flag.IntVar(&o.prIters, "pr-iters", 10, "pagerank iterations")
	flag.IntVar(&o.repeat, "repeat", 1, "run the app list this many times (live-metrics window)")
	flag.Float64Var(&o.loss, "loss", 0, "injected datagram loss rate [0,1)")
	flag.Float64Var(&o.dup, "dup", 0, "injected duplication rate [0,1)")
	flag.Float64Var(&o.reorder, "reorder", 0, "injected reorder rate [0,1)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 0, "fault-injection PRNG seed (0 = default)")
	flag.BoolVar(&o.verbose, "v", false, "cluster-wide telemetry report at exit")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve live telemetry over HTTP; rank r listens on port+r (port 0: ephemeral)")
	flag.StringVar(&o.metricsOut, "metrics-out", "",
		"write the merged cluster telemetry snapshot to this JSON file (rank 0)")
	flag.StringVar(&o.traceOut, "trace-out", "",
		"enable message-lifecycle tracing and write the merged Chrome trace to this JSON file (rank 0)")
	flag.StringVar(&o.opsLog, "ops-log", "",
		"append health ops events (alerts, status changes) as JSONL to this file (rank 0)")
	flag.StringVar(&o.injectStall, "inject-stall", "",
		"fault injection rank:shard:after:dur — wedge that rank's progress shard for dur after the delay")
	flag.StringVar(&o.incidentDir, "incident-dir", "",
		"write alert/on-demand incident bundles (cross-rank postmortem evidence) into this directory")
	flag.StringVar(&o.profPeriod, "profile-period", "",
		"continuous-profiling sampling period (e.g. 60s; 0 disables; default 60s with -incident-dir)")
	flag.Parse()
	return o
}

func main() {
	o := parseFlags()
	if netfabric.InEnv() {
		os.Exit(child(o))
	}
	os.Exit(parent(o))
}

// parent binds all sockets, spawns one child per rank, and reports the
// job's verdict via the worst child exit code.
func parent(o *options) int {
	j, err := launch.NewJob(o.n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lci-launch:", err)
		return 2
	}
	j.Loss, j.Dup, j.Reorder, j.FaultSeed = o.loss, o.dup, o.reorder, o.faultSeed
	// -trace-out implies tracing in every child.
	j.Trace = o.traceOut != ""
	// Children inherit the parent's environment, so exporting the shard
	// count here reaches both the netfabric reader group and the LCI
	// progress-shard set in every rank.
	if o.shards > 0 {
		os.Setenv(netfabric.EnvEndpointShards, strconv.Itoa(o.shards))
	}
	// Same inheritance route for incident capture: the directory (and the
	// optional continuous-profiling cadence) reach every rank via env.
	if o.incidentDir != "" {
		if err := os.MkdirAll(o.incidentDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "lci-launch:", err)
			return 2
		}
		os.Setenv(incident.EnvIncidentDir, o.incidentDir)
	}
	if o.profPeriod != "" {
		os.Setenv(incident.EnvProfilePeriod, o.profPeriod)
	}

	// With -metrics-addr the parent also pre-binds one TCP listener per
	// rank, for the same reason it pre-binds the UDP sockets: children
	// inherit a ready listener and there is no port race or scrape window
	// where a rank is not yet serving.
	if o.metricsAddr != "" {
		if err := j.BindMetrics(o.metricsAddr); err != nil {
			fmt.Fprintln(os.Stderr, "lci-launch:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "lci-launch: metrics on %s (rank 0 merges at /cluster)\n",
			strings.Join(j.MetricsAddrs, ","))
	}
	henv, err := launch.HealthEnv(o.opsLog, o.injectStall, "lci-launch")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lci-launch:", err)
		return 2
	}
	var extra func(rank int) ([]string, []*os.File)
	if henv != nil {
		extra = func(rank int) ([]string, []*os.File) { return henv(rank), nil }
	}
	if err := j.Start(os.Args[1:], extra); err != nil {
		fmt.Fprintln(os.Stderr, "lci-launch:", err)
		return 2
	}
	return j.Wait()
}

// child is one rank: it joins the job through the inherited socket, runs
// every requested app, and exits 0 only if the whole job verified.
func child(o *options) int {
	prov, err := netfabric.FromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lci-launch child:", err)
		return 2
	}
	rank, size := prov.Rank(), prov.Size()
	if rank == 0 {
		// One line recording what the kernel capability probes negotiated,
		// so CI logs show which fast-path tier the smoke actually exercised.
		fmt.Fprintf(os.Stderr, "lci-launch: netfabric %s\n", prov.Capabilities())
	}

	reg := telemetry.New(rank) // honors LCI_NO_TELEMETRY
	prov.RegisterMetrics(reg)
	tr := tracing.Default() // nil unless LCI_TRACE (the parent sets it for -trace-out)
	mon := health.New(health.Options{
		Rank: rank, Ranks: size, Reg: reg, Tracer: tr,
		OpsLogPath: os.Getenv(health.EnvOpsLog),
	})
	rec := incident.FromEnv(rank, size, reg, tr, mon)
	if rec != nil {
		// The recorder's SIGQUIT handler subsumes the flight-record dump
		// (it dumps, then writes an emergency bundle, then re-raises).
		rec.NotifySignals()
		mon.SetAlertHook(rec.OnAlert)
		mon.SetPumpHook(rec.Pump)
		rec.Start()
	} else {
		tr.NotifySIGQUIT()
	}
	mon.Start()
	srv := launch.ServeMetrics(reg, tr, mon, rec, rank)

	g := graph.Named(o.graph, o.scale, o.seed)
	pt := partition.Build(g, size, partition.VertexCut)
	hg := pt.Hosts[rank]
	opt := bench.LCIOptions(size, o.threads)
	opt.Telemetry = reg
	layer := comm.NewLCILayer(prov, opt)

	appList := strings.Split(o.apps, ",")
	failed := false
	gather := o.verbose || o.metricsAddr != "" || o.metricsOut != ""
	var merged *telemetry.Snapshot
	var mergedTrace []byte
	cluster.RunRank(rank, size, o.threads, layer, func(h *cluster.Host) {
		mon.Bind(h.Layer)
		rec.Bind(h.Layer)
		for it := 0; it < o.repeat; it++ {
			for _, app := range appList {
				app = strings.TrimSpace(app)
				if app == "" {
					continue
				}
				rt := abelian.New(h, hg, partition.VertexCut)
				rt.Health = mon
				bad, detail := runApp(rt, g, hg, app, o)
				totalBad := h.AllreduceSum(bad)
				if totalBad > 0 {
					failed = true
				}
				// With -repeat the later iterations only report failures;
				// the traffic still lands in the live metrics.
				if h.Rank == 0 && (it == 0 || totalBad > 0) {
					verdict := "PASS"
					if totalBad > 0 {
						verdict = fmt.Sprintf("FAIL (%d master mismatches)", totalBad)
					}
					fmt.Printf("lci-launch: %-10s n=%d graph=%s scale=%d rounds=%d  %s%s\n",
						app, size, o.graph, o.scale, rt.Rounds, verdict, detail)
				}
			}
		}
		if gather {
			// Cluster-wide aggregation rides the communication layer itself:
			// every rank serializes its snapshot and rank 0 gathers them over
			// the collective tag, then merges. This works with no HTTP
			// endpoints at all (-v without -metrics-addr).
			snap, err := json.Marshal(reg.Snapshot())
			if err != nil {
				fmt.Fprintf(os.Stderr, "lci-launch: marshal snapshot: %v\n", err)
				snap = []byte("{}")
			}
			parts := h.GatherBytes(0, snap, 1<<20)
			if h.Rank == 0 {
				snaps := make([]*telemetry.Snapshot, 0, len(parts))
				for r, p := range parts {
					var s telemetry.Snapshot
					if err := json.Unmarshal(p, &s); err != nil {
						fmt.Fprintf(os.Stderr, "lci-launch: decode rank %d snapshot: %v\n", r, err)
						continue
					}
					snaps = append(snaps, &s)
				}
				merged = telemetry.Merge(snaps...)
			}
		}
		if o.traceOut != "" && tr.Enabled() {
			// The trace merge rides the communication layer too: each rank's
			// ring drains into a Chrome trace-event blob, rank 0 gathers and
			// concatenates them into one timeline.
			blob := tracing.ChromeTrace(tr.Events(), rank)
			parts := h.GatherBytes(0, blob, 16<<20)
			if h.Rank == 0 {
				doc, err := tracing.MergeChrome(parts)
				if err != nil {
					fmt.Fprintf(os.Stderr, "lci-launch: merge traces: %v\n", err)
				} else {
					mergedTrace = doc
				}
			}
		}
		// Stop judging before RunRank tears the layer down: a stopped
		// progress loop is indistinguishable from a wedged one. The
		// recorder goes first so no capture posts on a dying layer.
		rec.Close()
		mon.Close()
	})

	if st := prov.Stats(); st.Retransmits > 0 || st.CreditStalls > 0 {
		fmt.Fprintf(os.Stderr,
			"[rank %d] frames=%d bytes=%d retransmits=%d dropped=%d acks=%d pgyAcks=%d batches=%d/%d creditStalls=%d sockErrs=%d srtt=%s\n",
			rank, st.SendFrames, st.SendBytes, st.Retransmits, st.PacketsDropped,
			st.AcksSent, st.PiggybackAcks, st.SendBatches, st.RecvBatches,
			st.CreditStalls, st.SockErrors, time.Duration(st.RTTNanos))
	}
	if merged != nil {
		if o.verbose || o.metricsAddr != "" {
			fmt.Fprint(os.Stderr, merged.Report())
		}
		if o.metricsOut != "" {
			data, err := json.MarshalIndent(merged, "", "  ")
			if err == nil {
				err = launch.WriteFileAtomic(o.metricsOut, append(data, '\n'))
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "lci-launch: write %s: %v\n", o.metricsOut, err)
			}
		}
	}
	if mergedTrace != nil {
		if err := launch.WriteFileAtomic(o.traceOut, mergedTrace); err != nil {
			fmt.Fprintf(os.Stderr, "lci-launch: write %s: %v\n", o.traceOut, err)
		} else {
			fmt.Fprintf(os.Stderr, "lci-launch: merged trace written to %s (open in Perfetto)\n", o.traceOut)
		}
	}
	if srv != nil {
		srv.Close()
	}
	prov.Close()
	if failed {
		return 1
	}
	return 0
}

// runApp runs one app on this rank's runtime and returns the number of
// this rank's masters that disagree with the single-host oracle, plus an
// optional detail suffix for the rank-0 report line.
func runApp(rt *abelian.Runtime, g *graph.Graph, hg *partition.HostGraph,
	app string, o *options) (bad int64, detail string) {

	switch app {
	case "bfs":
		f, _ := apps.BFS(rt, uint32(o.source))
		want := apps.OracleBFS(g, uint32(o.source))
		return cmpMasters(hg, f.Get, want), ""
	case "sssp":
		f, _ := apps.SSSP(rt, uint32(o.source))
		want := apps.OracleSSSP(g, uint32(o.source))
		return cmpMasters(hg, f.Get, want), ""
	case "cc":
		f, _ := apps.CC(rt)
		want := apps.OracleCC(g)
		return cmpMasters(hg, f.Get, want), ""
	case "pagerank":
		f := apps.PageRank(rt, o.prIters)
		want := apps.OraclePageRank(g, o.prIters)
		var maxDelta float64
		for m := 0; m < hg.NumMasters; m++ {
			d := math.Abs(math.Float64frombits(f.Get(uint32(m))) - want[hg.L2G[m]])
			if d > maxDelta {
				maxDelta = d
			}
		}
		// Agree on the global max delta: non-negative floats order the
		// same as their IEEE-754 bit patterns.
		worst := rt.Host.AllreduceMax(int64(math.Float64bits(maxDelta)))
		globalMax := math.Float64frombits(uint64(worst))
		if globalMax > 1e-9 {
			return 1, fmt.Sprintf("  maxDelta=%.3e", globalMax)
		}
		return 0, fmt.Sprintf("  maxDelta=%.3e", globalMax)
	default:
		fmt.Fprintf(os.Stderr, "lci-launch: unknown app %q\n", app)
		return 1, ""
	}
}

// cmpMasters counts this rank's masters whose value disagrees with the
// oracle's global answer.
func cmpMasters(hg *partition.HostGraph, get func(lv uint32) uint64, want []uint64) int64 {
	var bad int64
	for m := 0; m < hg.NumMasters; m++ {
		if get(uint32(m)) != want[hg.L2G[m]] {
			bad++
		}
	}
	return bad
}
