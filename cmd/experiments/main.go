// Command experiments regenerates every table and figure of the paper's
// evaluation (§IV) at laptop scale and prints them as text blocks; see
// EXPERIMENTS.md for recorded outputs and the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -all
//	experiments -fig1 -fig3 -scale 11 -hosts 2,4,8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lcigraph/internal/bench"
)

func main() {
	all := flag.Bool("all", false, "run everything")
	fig1 := flag.Bool("fig1", false, "Fig 1: microbenchmark")
	table1 := flag.Bool("table1", false, "Table I: inputs")
	fig3 := flag.Bool("fig3", false, "Fig 3: Abelian execution time")
	fig4 := flag.Bool("fig4", false, "Fig 4: Gemini execution time")
	fig5 := flag.Bool("fig5", false, "Fig 5: memory footprint")
	fig6 := flag.Bool("fig6", false, "Fig 6: compute/comm breakdown")
	table2 := flag.Bool("table2", false, "Table II: NIC portability")
	table3 := flag.Bool("table3", false, "Table III: cluster profiles")
	table4 := flag.Bool("table4", false, "Table IV: other MPI implementations")
	ablations := flag.Bool("ablations", false, "design-choice ablations (fusion, ordering, aggregation, pool locality)")
	portability := flag.Bool("portability", false, "apps across omnipath/infiniband/sockets transports")
	alltoall := flag.Bool("alltoall", false, "all-to-all message-rate microbenchmark")
	threadScaling := flag.Bool("thread-scaling", false, "end-to-end thread-count sweep")
	datapath := flag.Bool("datapath", false, "batched/pooled data path: allocs and frames per message, before vs after")
	datapathOut := flag.String("datapath-out", "", "also write the datapath report JSON to this path")
	netfab := flag.Bool("netfabric", false, "transport comparison: in-process simulator vs loopback UDP provider")
	netfabOut := flag.String("netfabric-out", "", "also write the netfabric report JSON to this path")

	shards := flag.Int("shards", 0,
		"progress shards per rank (sets LCI_ENDPOINT_SHARDS for every in-process run; 0 = inherit env)")

	scale := flag.Int("scale", 0, "graph scale (default from suite)")
	hostsStr := flag.String("hosts", "", "host sweep, e.g. 2,4,8")
	threads := flag.Int("threads", 0, "compute threads per host")
	repeats := flag.Int("repeats", 0, "runs per data point (paper: 5)")
	microIters := flag.Int("micro-iters", 2000, "Fig 1 iterations")
	flag.Parse()

	if *shards > 0 {
		// Every harness sizes endpoints through bench.LCIOptions, which
		// reads this variable; exporting it here covers all of them.
		os.Setenv("LCI_ENDPOINT_SHARDS", strconv.Itoa(*shards))
	}

	e := bench.DefaultExp()
	if *scale > 0 {
		e.Scale = *scale
	}
	if *threads > 0 {
		e.Threads = *threads
	}
	if *repeats > 0 {
		e.Repeats = *repeats
	}
	if *hostsStr != "" {
		var hs []int
		for _, f := range strings.Split(*hostsStr, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -hosts:", err)
				os.Exit(2)
			}
			hs = append(hs, v)
		}
		e.Hosts = hs
	}

	ran := false
	run := func(enabled bool, name string, fn func() string) {
		if !*all && !enabled {
			return
		}
		ran = true
		fmt.Printf("==== %s ====\n", name)
		fmt.Println(fn())
	}

	run(*table3, "Table III", bench.Table3)
	run(*table1, "Table I", func() string { return bench.Table1(e) })
	run(*fig1, "Fig 1", func() string { return bench.Fig1Table(*microIters) })
	run(*fig3, "Fig 3", func() string { return bench.Fig3(e) })
	run(*fig4, "Fig 4", func() string { return bench.Fig4(e) })
	run(*fig5, "Fig 5", func() string { return bench.Fig5(e) })
	run(*fig6, "Fig 6", func() string { return bench.Fig6(e) })
	run(*table2, "Table II", func() string { return bench.Table2(e) })
	run(*table4, "Table IV", func() string { return bench.Table4(e) })
	run(*portability, "Portability", func() string { return bench.Portability(e) })
	run(*alltoall, "All-to-all", func() string {
		return bench.AllToAllTable([]int{2, 4, 8}, *microIters/4)
	})
	run(*threadScaling, "Thread scaling", func() string {
		return bench.ThreadScaling(e, []int{1, 2, 4, 8})
	})
	run(*datapath, "Datapath", func() string {
		r := bench.Datapath(0, 0, 0, 0)
		if *datapathOut != "" {
			if err := r.WriteJSON(*datapathOut); err != nil {
				fmt.Fprintln(os.Stderr, "datapath-out:", err)
				os.Exit(1)
			}
		}
		return r.Table()
	})
	run(*netfab, "Netfabric", func() string {
		r, err := bench.Netfabric(0, 0, 0, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netfabric:", err)
			os.Exit(1)
		}
		if *netfabOut != "" {
			if err := r.WriteJSON(*netfabOut); err != nil {
				fmt.Fprintln(os.Stderr, "netfabric-out:", err)
				os.Exit(1)
			}
		}
		return r.Table()
	})
	run(*ablations, "Ablations", func() string {
		return bench.AblationFused(e) + "\n" + bench.AblationOrdering(e) + "\n" +
			bench.AblationAggregation(e) + "\n" + bench.AblationAdaptive(e) + "\n" +
			bench.AblationDirectionBFS(e) + "\n" + bench.AblationCoalescing(e) + "\n" +
			bench.AblationPoolLocality(4, *microIters)
	})

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
