// Command lci-serve runs the graph-query serving layer (internal/serve) as
// P real OS processes connected by the UDP fabric provider over loopback:
// every rank keeps its partition of the graph resident, rank 0 accepts
// client connections on a TCP endpoint and scatters adjacency sub-queries
// to the owning ranks over the communication layer.
//
// The parent pre-binds every socket (the ranks' UDP fabric sockets, the
// per-rank telemetry listeners, and the client TCP endpoint) before any
// child exists, then re-executes itself once per rank — the same fork model
// as lci-launch, via internal/launch. The client listener is inherited by
// rank 0, so clients can connect the moment the parent prints the address;
// connections simply queue in the accept backlog until the ranks are
// resident.
//
// Usage:
//
//	lci-serve -n 4 -graph web -scale 14                  # serve until ^C
//	lci-serve -n 4 -scale 14 -soak -qps 300 -duration 10s -out BENCH_serving.json
//	lci-serve -n 4 -loss 0.05 -soak -repeat 3            # lossy soak, best of 3
//
// In soak mode the parent doubles as the load generator: it drives
// open-loop load at the target QPS (internal/serve's harness), scrapes the
// result-cache counters from rank 0's live /metrics.json, enforces the p99
// ceiling (skipped when GOMAXPROCS==1 — on one core the tail measures the
// scheduler, not the runtime), writes BENCH_serving.json, and then drains
// the job: SIGTERM to rank 0 flips the coordinator into draining, resident
// queries finish, workers get the stop control message, and every rank
// exits through the cluster barrier.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lcigraph/internal/bench"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	"lcigraph/internal/graph"
	"lcigraph/internal/health"
	"lcigraph/internal/incident"
	"lcigraph/internal/launch"
	"lcigraph/internal/netfabric"
	"lcigraph/internal/partition"
	"lcigraph/internal/serve"
	"lcigraph/internal/telemetry"
	"lcigraph/internal/tracing"
)

// envServeFD carries the inherited client-listener fd to rank 0.
const envServeFD = "LCI_SERVE_FD"

type options struct {
	n       int
	graph   string
	scale   int
	seed    int64
	threads int
	shards  int

	addr        string
	metricsAddr string
	trace       bool
	opsLog      string
	injectStall string
	incidentDir string
	profPeriod  string

	maxInFlight  int
	maxPerClient int
	cacheSize    int

	loss      float64
	dup       float64
	reorder   float64
	faultSeed int64

	soak     bool
	qps      float64
	conns    int
	duration time.Duration
	repeat   int
	maxP99   time.Duration
	out      string
}

func parseFlags() *options {
	o := &options{}
	flag.IntVar(&o.n, "n", 4, "number of ranks (OS processes)")
	flag.StringVar(&o.graph, "graph", "web", "graph family: rmat | kron | web")
	flag.IntVar(&o.scale, "scale", 12, "graph scale (2^scale vertices)")
	flag.Int64Var(&o.seed, "seed", 42, "graph generator seed")
	flag.IntVar(&o.threads, "threads", 2, "compute threads per rank")
	flag.IntVar(&o.shards, "shards", 0,
		"progress shards per rank (sets LCI_ENDPOINT_SHARDS; 0 = inherit env, default 1)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:0", "client TCP endpoint (rank 0)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve live telemetry over HTTP; rank r listens on port+r (port 0: ephemeral)")
	flag.BoolVar(&o.trace, "trace", false, "record message-lifecycle traces (/debug/trace)")
	flag.StringVar(&o.opsLog, "ops-log", "",
		"append health ops events (alerts, status changes) as JSONL to this file (rank 0)")
	flag.StringVar(&o.injectStall, "inject-stall", "",
		"fault injection rank:shard:after:dur — wedge that rank's progress shard for dur after the delay")
	flag.StringVar(&o.incidentDir, "incident-dir", "",
		"write alert/on-demand incident bundles (cross-rank postmortem evidence) into this directory")
	flag.StringVar(&o.profPeriod, "profile-period", "",
		"continuous-profiling sampling period (e.g. 60s; 0 disables; default 60s with -incident-dir)")
	flag.IntVar(&o.maxInFlight, "max-inflight", 0, "admission: max resident queries (0 = default)")
	flag.IntVar(&o.maxPerClient, "max-per-client", 0, "admission: max resident queries per client (0 = default)")
	flag.IntVar(&o.cacheSize, "cache", 0, "result-cache entries (0 = default)")
	flag.Float64Var(&o.loss, "loss", 0, "injected datagram loss rate [0,1)")
	flag.Float64Var(&o.dup, "dup", 0, "injected duplication rate [0,1)")
	flag.Float64Var(&o.reorder, "reorder", 0, "injected reorder rate [0,1)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 0, "fault-injection PRNG seed (0 = default)")
	flag.BoolVar(&o.soak, "soak", false, "drive open-loop load, report, then drain the job")
	flag.Float64Var(&o.qps, "qps", 200, "soak: target aggregate query rate")
	flag.IntVar(&o.conns, "conns", 4, "soak: client connections")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "soak: measured window")
	flag.IntVar(&o.repeat, "repeat", 1, "soak: trials; the best (lowest p99) is reported")
	flag.DurationVar(&o.maxP99, "max-p99", 250*time.Millisecond,
		"soak: p99 latency ceiling (skipped when GOMAXPROCS==1)")
	flag.StringVar(&o.out, "out", "", "soak: write the report JSON here (e.g. BENCH_serving.json)")
	flag.Parse()
	return o
}

func main() {
	o := parseFlags()
	if netfabric.InEnv() {
		os.Exit(child(o))
	}
	os.Exit(parent(o))
}

// parent binds every socket, spawns the ranks, and either hands the job to
// the user (serve mode: wait for ^C, forward it as a drain) or drives it
// itself (soak mode).
func parent(o *options) int {
	j, err := launch.NewJob(o.n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lci-serve:", err)
		return 2
	}
	j.Loss, j.Dup, j.Reorder, j.FaultSeed = o.loss, o.dup, o.reorder, o.faultSeed
	j.Trace = o.trace
	// Children inherit the environment: the shard count reaches both the
	// netfabric reader group and the LCI progress shards in every rank.
	if o.shards > 0 {
		os.Setenv(netfabric.EnvEndpointShards, strconv.Itoa(o.shards))
	}
	// Same inheritance route for incident capture.
	if o.incidentDir != "" {
		if err := os.MkdirAll(o.incidentDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "lci-serve:", err)
			return 2
		}
		os.Setenv(incident.EnvIncidentDir, o.incidentDir)
	}
	if o.profPeriod != "" {
		os.Setenv(incident.EnvProfilePeriod, o.profPeriod)
	}

	// Soak mode scrapes the cache counters from rank 0's live telemetry, so
	// it always binds metrics listeners (ephemeral unless the user chose).
	maddr := o.metricsAddr
	if maddr == "" && o.soak {
		maddr = "127.0.0.1:0"
	}
	if maddr != "" {
		if err := j.BindMetrics(maddr); err != nil {
			fmt.Fprintln(os.Stderr, "lci-serve:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "lci-serve: metrics on %s (rank 0 merges at /cluster)\n",
			strings.Join(j.MetricsAddrs, ","))
	}

	// The client endpoint is pre-bound like everything else and inherited by
	// rank 0; with metrics bound it lands at fd 5, otherwise fd 4.
	cln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lci-serve: bind client endpoint: %v\n", err)
		return 2
	}
	clientAddr := cln.Addr().String()
	fmt.Fprintf(os.Stderr, "lci-serve: serving clients on %s\n", clientAddr)
	serveFD := 4
	if maddr != "" {
		serveFD = 5
	}
	henv, err := launch.HealthEnv(o.opsLog, o.injectStall, "lci-serve")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lci-serve:", err)
		return 2
	}
	var extraErr error
	extra := func(rank int) ([]string, []*os.File) {
		var env []string
		if henv != nil {
			env = henv(rank)
		}
		if rank != 0 {
			return env, nil
		}
		f, err := cln.(*net.TCPListener).File()
		if err != nil {
			extraErr = err
			return env, nil
		}
		return append(env, fmt.Sprintf("%s=%d", envServeFD, serveFD)), []*os.File{f}
	}
	if err := j.Start(os.Args[1:], extra); err != nil {
		fmt.Fprintln(os.Stderr, "lci-serve:", err)
		return 2
	}
	if extraErr != nil {
		fmt.Fprintf(os.Stderr, "lci-serve: inherit client endpoint: %v\n", extraErr)
		j.Kill()
		return 2
	}
	// Rank 0 holds its inherited copy; the parent's is no longer needed, and
	// closing it means the endpoint dies with rank 0 at drain.
	cln.Close()

	if !o.soak {
		// Serve until interrupted, then translate the interrupt into a
		// graceful drain: SIGTERM to rank 0 only — the workers stop when the
		// coordinator tells them to, after the resident queries finish.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "lci-serve: draining")
			j.Signal(0, syscall.SIGTERM)
		}()
		return j.Wait()
	}

	code := soak(o, j, clientAddr)
	j.Signal(0, syscall.SIGTERM)
	if c := j.Wait(); c != 0 && code == 0 {
		code = c
	}
	return code
}

// soak drives the load-generation trials against a started job and writes
// the report. The job is still running when it returns; the caller drains.
func soak(o *options, j *launch.Job, addr string) int {
	opt := serve.SoakOptions{
		Addr:      addr,
		Conns:     o.conns,
		QPS:       o.qps,
		Duration:  o.duration,
		Seed:      o.seed,
		MaxVertex: uint32(1) << o.scale,
	}
	var best serve.SoakReport
	for trial := 0; trial < max(o.repeat, 1); trial++ {
		opt.Seed = o.seed + int64(trial)
		r, err := serve.RunSoak(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lci-serve:", err)
			return 1
		}
		if trial == 0 || r.P99us < best.P99us {
			best = r
		}
		if o.repeat > 1 {
			fmt.Fprintf(os.Stderr, "lci-serve: trial %d/%d p99=%.0fµs shed=%.1f%%\n",
				trial+1, o.repeat, r.P99us, 100*r.ShedRate)
		}
	}
	best.CacheHitRatio = scrapeCacheRatio(j)

	code := 0
	if err := best.CheckLatency(o.maxP99); err != nil {
		fmt.Fprintln(os.Stderr, "lci-serve:", err)
		code = 1
	}
	fmt.Fprint(os.Stderr, best.Table())
	if o.out != "" {
		data, err := json.MarshalIndent(best, "", "  ")
		if err == nil {
			err = launch.WriteFileAtomic(o.out, append(data, '\n'))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lci-serve: write %s: %v\n", o.out, err)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "lci-serve: report written to %s\n", o.out)
		}
	}
	return code
}

// scrapeCacheRatio reads the result-cache counters from rank 0's live
// /metrics.json; -1 when the scrape fails or nothing was looked up.
func scrapeCacheRatio(j *launch.Job) float64 {
	if len(j.MetricsAddrs) == 0 {
		return -1
	}
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + j.MetricsAddrs[0] + "/metrics.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lci-serve: scrape cache counters: %v\n", err)
		return -1
	}
	defer resp.Body.Close()
	var s telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		fmt.Fprintf(os.Stderr, "lci-serve: decode cache counters: %v\n", err)
		return -1
	}
	hits := s.Counters["lci_serve_cache_hits_total"]
	misses := s.Counters["lci_serve_cache_misses_total"]
	if hits+misses == 0 {
		return -1
	}
	return float64(hits) / float64(hits+misses)
}

// child is one rank: it joins the job through the inherited fabric socket,
// builds the resident partition, and serves until drained.
func child(o *options) int {
	prov, err := netfabric.FromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lci-serve child:", err)
		return 2
	}
	rank, size := prov.Rank(), prov.Size()
	if rank == 0 {
		fmt.Fprintf(os.Stderr, "lci-serve: netfabric %s\n", prov.Capabilities())
	}

	reg := telemetry.New(rank) // honors LCI_NO_TELEMETRY
	prov.RegisterMetrics(reg)
	tr := tracing.Default() // nil unless LCI_TRACE (the parent sets it for -trace)
	mon := health.New(health.Options{
		Rank: rank, Ranks: size, Reg: reg, Tracer: tr,
		OpsLogPath: os.Getenv(health.EnvOpsLog),
	})
	rec := incident.FromEnv(rank, size, reg, tr, mon)
	if rec != nil {
		rec.NotifySignals() // subsumes the SIGQUIT flight-record dump
		mon.SetAlertHook(rec.OnAlert)
		mon.SetPumpHook(rec.Pump)
		rec.Start()
	} else {
		tr.NotifySIGQUIT()
	}
	mon.Start()
	msrv := launch.ServeMetrics(reg, tr, mon, rec, rank)

	// Every rank builds the same partition deterministically; EdgeCut keeps
	// a vertex's full out-neighborhood on its owner, which is what lets one
	// adjacency request per (round, owner) answer a frontier.
	g := graph.Named(o.graph, o.scale, o.seed)
	pt := partition.Build(g, size, partition.EdgeCut)
	opt := bench.LCIOptions(size, o.threads)
	opt.Telemetry = reg
	layer := comm.NewLCILayer(prov, opt)

	cfg := serve.Config{
		MaxInFlight:  o.maxInFlight,
		MaxPerClient: o.maxPerClient,
		CacheSize:    o.cacheSize,
		Reg:          reg,
		Tracer:       tr,
		Health:       mon,
	}
	cluster.RunRank(rank, size, o.threads, layer, func(h *cluster.Host) {
		mon.Bind(h.Layer)
		rec.Bind(h.Layer)
		s := serve.New(h, pt, cfg)
		if rank == 0 {
			ln, err := launch.InheritedListener(serveFDFromEnv())
			if err != nil {
				fmt.Fprintf(os.Stderr, "lci-serve: client endpoint: %v\n", err)
				os.Exit(2)
			}
			// SIGTERM is the drain signal: stop admitting, finish the
			// resident queries, then stop the workers.
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
			go func() {
				<-sig
				s.InitiateDrain()
			}()
			fe := serve.ServeClients(ln, s)
			s.Run()
			signal.Stop(sig)
			fe.Close()
		} else {
			s.Run()
		}
		// Stop judging before RunRank tears the layer down: a stopped
		// progress loop is indistinguishable from a wedged one. The
		// recorder goes first so no capture posts on a dying layer.
		rec.Close()
		mon.Close()
	})

	if st := prov.Stats(); st.Retransmits > 0 || st.CreditStalls > 0 {
		fmt.Fprintf(os.Stderr, "[rank %d] frames=%d retransmits=%d creditStalls=%d srtt=%s\n",
			rank, st.SendFrames, st.Retransmits, st.CreditStalls, time.Duration(st.RTTNanos))
	}
	if msrv != nil {
		msrv.Close()
	}
	prov.Close()
	return 0
}

func serveFDFromEnv() int {
	fd := 4
	fmt.Sscanf(os.Getenv(envServeFD), "%d", &fd)
	return fd
}
