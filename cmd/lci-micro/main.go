// Command lci-micro runs the Fig. 1 microbenchmark: one-way latency and
// aggregate message rate between two simulated hosts for the three receive
// disciplines (MPI no-probe, MPI probe, LCI queue).
//
// Usage:
//
//	lci-micro [-iters N] [-profile omnipath|infiniband] [-impl intelmpi|mvapich2|openmpi]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lcigraph/internal/bench"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

func parseProfile(name string) (fabric.Profile, error) {
	switch name {
	case "omnipath":
		return fabric.OmniPath(), nil
	case "infiniband":
		return fabric.InfiniBand(), nil
	case "sockets":
		return fabric.Sockets(), nil
	default:
		return fabric.Profile{}, fmt.Errorf("unknown profile %q", name)
	}
}

func parseImpl(name string) (mpi.Impl, error) {
	for _, im := range mpi.Impls() {
		if im.Name == name {
			return im, nil
		}
	}
	return mpi.Impl{}, fmt.Errorf("unknown MPI implementation %q", name)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	iters := flag.Int("iters", 2000, "round trips / messages per thread")
	profName := flag.String("profile", "omnipath", "NIC profile: omnipath, infiniband or sockets")
	implName := flag.String("impl", "intelmpi", "MPI implementation profile")
	sizesStr := flag.String("sizes", "8,256,4096", "latency payload sizes (bytes)")
	threadsStr := flag.String("threads", "1,2,4,8", "rate benchmark sender thread counts")
	flag.Parse()

	prof, err := parseProfile(*profName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	impl, err := parseImpl(*implName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sizes, err := parseInts(*sizesStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -sizes:", err)
		os.Exit(2)
	}
	threads, err := parseInts(*threadsStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -threads:", err)
		os.Exit(2)
	}

	fmt.Printf("lci-micro: profile=%s impl=%s iters=%d\n\n", prof.Name, impl.Name, *iters)
	rs := bench.Fig1(sizes, threads, *iters, prof, impl)
	fmt.Print(bench.FormatMicro(rs))
}
