// lci-incident analyzes incident bundles written by the incident recorder
// (internal/incident, DESIGN.md §17):
//
//	lci-incident verify <bundle.tar.gz>        manifest/schema check (CI gate)
//	lci-incident report <bundle.tar.gz>        human postmortem
//	lci-incident diff   <a.tar.gz> <b.tar.gz>  what changed between two bundles
//
// verify exits 0 on a well-formed bundle and 1 with one problem per line
// otherwise. report names the trigger (rank:shard for progress stalls),
// attributes the incident per rank and per shard from the bundled health
// time series, diffs the live CPU profile against the pre-incident
// continuous baseline, diffs goroutine counts for leaks, and lists the
// transport hot spots (retransmits, credit stalls, worst-peer SRTT).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"lcigraph/internal/health"
	"lcigraph/internal/incident"
	"lcigraph/internal/telemetry"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "verify":
		err = verify(os.Args[2])
	case "report":
		err = report(os.Args[2])
	case "diff":
		if len(os.Args) < 4 {
			usage()
		}
		err = diff(os.Args[2], os.Args[3])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lci-incident verify <bundle> | report <bundle> | diff <a> <b>")
	os.Exit(2)
}

// ---- verify ----

func verify(path string) error {
	b, err := incident.ReadBundle(path)
	if err != nil {
		return err
	}
	probs := b.Verify()
	for _, p := range probs {
		fmt.Println(p)
	}
	if len(probs) > 0 {
		return fmt.Errorf("verify: %d problem(s) in %s", len(probs), path)
	}
	m := b.Manifest
	fmt.Printf("OK %s: schema %d, trigger %s, %d/%d ranks, %d files\n",
		m.ID, m.Schema, m.Trigger.Kind, len(m.GotRanks), m.Ranks, len(b.Files)-1)
	return nil
}

// ---- report ----

// rankEvidence is one rank's decoded evidence set (absent pieces are nil).
type rankEvidence struct {
	rank    int
	meta    incident.Meta
	hasMeta bool
	metrics *telemetry.Snapshot
	hlth    *health.DebugPayload
	cpu     *incident.Profile
	gor     *incident.Profile
	baseCPU *incident.Profile // newest continuous pre-incident CPU profile
	baseGor *incident.Profile // newest continuous pre-incident goroutine profile
}

func loadRank(b *incident.Bundle, r int) rankEvidence {
	ev := rankEvidence{rank: r}
	ev.meta, ev.hasMeta = b.RankMeta(r)
	if data := b.RankFile(r, incident.FileMetrics); data != nil {
		var s telemetry.Snapshot
		if json.Unmarshal(data, &s) == nil {
			ev.metrics = &s
		}
	}
	if data := b.RankFile(r, incident.FileHealth); data != nil {
		var p health.DebugPayload
		if json.Unmarshal(data, &p) == nil {
			ev.hlth = &p
		}
	}
	parse := func(name string) *incident.Profile {
		data := b.RankFile(r, name)
		if data == nil {
			return nil
		}
		p, err := incident.ParseProfile(data)
		if err != nil {
			return nil
		}
		return p
	}
	ev.cpu = parse(incident.FileCPU)
	ev.gor = parse(incident.FileGoroutine)
	// The continuous ring is ordered oldest→newest per kind; the
	// highest-numbered entry is the freshest pre-incident baseline.
	for _, kind := range []string{"cpu", "goroutine"} {
		var newest *incident.Profile
		for i := 0; ; i++ {
			p := parse(fmt.Sprintf("%s/%s-%d.pprof", incident.ContinuousDir, kind, i))
			if p == nil {
				break
			}
			newest = p
		}
		if kind == "cpu" {
			ev.baseCPU = newest
		} else {
			ev.baseGor = newest
		}
	}
	return ev
}

func report(path string) error {
	b, err := incident.ReadBundle(path)
	if err != nil {
		return err
	}
	m := b.Manifest
	fmt.Printf("incident %s\n", m.ID)
	fmt.Printf("  created:  %s\n", time.Unix(0, m.CreatedNs).Format(time.RFC3339))
	trig := m.Trigger.Kind
	if m.Trigger.Alert != nil {
		a := m.Trigger.Alert
		trig = fmt.Sprintf("%s → alert %s rank=%d shard=%d [%s]: %s",
			trig, a.Name, a.Rank, a.Shard, a.Severity, a.Detail)
	} else if m.Trigger.Detail != "" {
		trig += " — " + m.Trigger.Detail
	}
	fmt.Printf("  trigger:  %s (origin rank %d)\n", trig, m.Trigger.Rank)
	fmt.Printf("  evidence: %d/%d ranks", len(m.GotRanks), m.Ranks)
	if len(m.Missing) > 0 {
		fmt.Printf("  MISSING: %v", m.Missing)
	}
	fmt.Println()
	if len(m.Clocks) > 1 {
		base := m.Clocks[0].WallNs
		var parts []string
		for _, c := range m.Clocks[1:] {
			parts = append(parts, fmt.Sprintf("r%d %+.1fms", c.Rank, float64(c.WallNs-base)/1e6))
		}
		fmt.Printf("  clock offsets vs rank %d: %s\n", m.Clocks[0].Rank, strings.Join(parts, ", "))
	}

	evs := make([]rankEvidence, 0, len(m.GotRanks))
	for _, r := range m.GotRanks {
		evs = append(evs, loadRank(b, r))
	}

	fmt.Println("\n== per-rank attribution ==")
	for _, ev := range evs {
		reportRank(ev)
	}
	fmt.Println("\n== transport hot spots ==")
	reportTransport(evs)
	fmt.Println("\n== CPU profile delta (incident vs pre-incident baseline) ==")
	for _, ev := range evs {
		reportCPUDelta(ev)
	}
	fmt.Println("\n== goroutine-leak diff ==")
	for _, ev := range evs {
		reportGoroutineDiff(ev)
	}
	return nil
}

// reportRank prints one rank's judgment row: status, alerts (naming
// rank:shard), and per-shard poll-rate collapse vs the rank's own baseline.
func reportRank(ev rankEvidence) {
	fmt.Printf("rank %d:", ev.rank)
	if ev.hasMeta {
		fmt.Printf(" %d goroutines, GOMAXPROCS=%d", ev.meta.NumGoroutine, ev.meta.GOMAXPROCS)
		if len(ev.meta.Errors) > 0 {
			fmt.Printf(" (capture errors: %s)", strings.Join(ev.meta.Errors, "; "))
		}
	}
	fmt.Println()
	if ev.hlth == nil {
		fmt.Println("  (no health evidence)")
		return
	}
	v := ev.hlth.View
	fmt.Printf("  status %s, %d alert(s) active, %d fired total\n", v.Status, len(v.Alerts), v.FiredTotal)
	for _, a := range v.Alerts {
		fmt.Printf("  ALERT [%s] %s rank=%d shard=%d: %s\n", a.Severity, a.Name, a.Rank, a.Shard, a.Detail)
	}
	// Per-shard poll-rate collapse: compare each progress-poll series' recent
	// window against its pre-incident baseline.
	type shardDelta struct {
		name           string
		base, recent   float64
	}
	var collapsed []shardDelta
	for name, pts := range ev.hlth.Series {
		if !strings.Contains(name, "progress_polls_total") || !strings.HasSuffix(name, ":rate") {
			continue
		}
		base, recent, ok := baselineRecent(pts)
		if !ok {
			continue
		}
		if base > 0 && recent < base*0.1 {
			collapsed = append(collapsed, shardDelta{strings.TrimSuffix(name, ":rate"), base, recent})
		}
	}
	sort.Slice(collapsed, func(i, j int) bool { return collapsed[i].name < collapsed[j].name })
	for _, c := range collapsed {
		fmt.Printf("  poll-rate collapse: %s  %.0f/s baseline → %.0f/s at capture\n",
			c.name, c.base, c.recent)
	}
}

// baselineRecent splits a series into its pre-incident baseline (first
// third) and the capture-time window (last 3 points), averaging each.
func baselineRecent(pts []health.Point) (base, recent float64, ok bool) {
	if len(pts) < 4 {
		return 0, 0, false
	}
	n := len(pts) / 3
	if n < 1 {
		n = 1
	}
	for _, p := range pts[:n] {
		base += p.V
	}
	base /= float64(n)
	tail := pts[len(pts)-3:]
	for _, p := range tail {
		recent += p.V
	}
	recent /= float64(len(tail))
	return base, recent, true
}

// reportTransport lists retransmit / credit-stall totals per rank and the
// worst-SRTT peers — the hot links during the incident.
func reportTransport(evs []rankEvidence) {
	type peerRTT struct {
		rank   int
		peer   string
		srttMs float64
	}
	var rtts []peerRTT
	any := false
	for _, ev := range evs {
		if ev.metrics == nil {
			continue
		}
		rt := ev.metrics.Counter("lci_net_retransmits_total")
		cs := ev.metrics.Counter("lci_net_credit_stalls_total")
		st := ev.metrics.Counter("lci_net_stalls_total")
		if rt+cs+st > 0 {
			any = true
			fmt.Printf("rank %d: retransmits=%d credit_stalls=%d stall_episodes=%d\n",
				ev.rank, rt, cs, st)
		}
		for name, g := range ev.metrics.Gauges {
			if !strings.HasPrefix(name, "lci_net_srtt_ns{peer=") {
				continue
			}
			peer := strings.TrimSuffix(strings.TrimPrefix(name, `lci_net_srtt_ns{peer="`), `"}`)
			rtts = append(rtts, peerRTT{ev.rank, peer, float64(g.Value) / 1e6})
		}
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i].srttMs > rtts[j].srttMs })
	if len(rtts) > 5 {
		rtts = rtts[:5]
	}
	for _, r := range rtts {
		if r.srttMs > 0 {
			any = true
			fmt.Printf("rank %d → peer %s: srtt %.2fms\n", r.rank, r.peer, r.srttMs)
		}
	}
	if !any {
		fmt.Println("(no transport anomalies recorded)")
	}
}

// flatFractions renders a profile's flat symbols as fractions of its total.
func flatFractions(p *incident.Profile, want string) map[string]float64 {
	out := map[string]float64{}
	if p == nil {
		return out
	}
	total := p.Total(want)
	if total <= 0 {
		return out
	}
	for _, sv := range p.FlatSymbols(want) {
		out[sv.Symbol] = float64(sv.Value) / float64(total)
	}
	return out
}

func reportCPUDelta(ev rankEvidence) {
	if ev.cpu == nil && ev.baseCPU == nil {
		fmt.Printf("rank %d: (no CPU evidence)\n", ev.rank)
		return
	}
	cur := flatFractions(ev.cpu, "cpu")
	base := flatFractions(ev.baseCPU, "cpu")
	live := ev.cpu
	label := "live capture"
	if live == nil {
		// Wedged rank whose live profile never ran: fall back to the
		// continuous baseline alone.
		cur, base = base, nil
		label = "continuous baseline only"
	}
	type row struct {
		sym        string
		frac, dlt  float64
	}
	var rows []row
	for sym, f := range cur {
		r := row{sym: sym, frac: f}
		if base != nil {
			r.dlt = f - base[sym]
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].frac != rows[j].frac {
			return rows[i].frac > rows[j].frac
		}
		return rows[i].sym < rows[j].sym
	})
	if len(rows) > 6 {
		rows = rows[:6]
	}
	fmt.Printf("rank %d (%s):\n", ev.rank, label)
	for _, r := range rows {
		if base != nil {
			fmt.Printf("  %6.1f%%  (%+5.1fpp vs baseline)  %s\n", r.frac*100, r.dlt*100, r.sym)
		} else {
			fmt.Printf("  %6.1f%%  %s\n", r.frac*100, r.sym)
		}
	}
}

func reportGoroutineDiff(ev rankEvidence) {
	if ev.gor == nil {
		fmt.Printf("rank %d: (no goroutine evidence)\n", ev.rank)
		return
	}
	curTotal := ev.gor.Total("goroutine")
	baseTotal := int64(0)
	baseBySym := map[string]int64{}
	if ev.baseGor != nil {
		baseTotal = ev.baseGor.Total("goroutine")
		for _, sv := range ev.baseGor.FlatSymbols("goroutine") {
			baseBySym[sv.Symbol] = sv.Value
		}
	}
	fmt.Printf("rank %d: %d goroutines", ev.rank, curTotal)
	if ev.baseGor != nil {
		fmt.Printf(" (%+d vs pre-incident baseline)", curTotal-baseTotal)
	}
	fmt.Println()
	grew := 0
	for _, sv := range ev.gor.FlatSymbols("goroutine") {
		d := sv.Value - baseBySym[sv.Symbol]
		if ev.baseGor != nil && d > 0 {
			fmt.Printf("  %+4d  %s\n", d, sv.Symbol)
			grew++
			if grew >= 5 {
				break
			}
		}
	}
}

// ---- diff ----

func diff(pathA, pathB string) error {
	a, err := incident.ReadBundle(pathA)
	if err != nil {
		return err
	}
	b, err := incident.ReadBundle(pathB)
	if err != nil {
		return err
	}
	fmt.Printf("diff %s → %s\n", a.Manifest.ID, b.Manifest.ID)
	fmt.Printf("  triggers: %s → %s\n", a.Manifest.Trigger.Kind, b.Manifest.Trigger.Kind)
	fmt.Printf("  gap: %.1fs\n", float64(b.Manifest.CreatedNs-a.Manifest.CreatedNs)/1e9)

	merge := func(bun *incident.Bundle) *telemetry.Snapshot {
		var snaps []*telemetry.Snapshot
		for _, r := range bun.Manifest.GotRanks {
			if data := bun.RankFile(r, incident.FileMetrics); data != nil {
				var s telemetry.Snapshot
				if json.Unmarshal(data, &s) == nil {
					snaps = append(snaps, &s)
				}
			}
		}
		return telemetry.Merge(snaps...)
	}
	sa, sb := merge(a), merge(b)

	fmt.Println("\n== cluster counter deltas (b - a) ==")
	names := make([]string, 0, len(sb.Counters))
	for name := range sb.Counters {
		names = append(names, name)
	}
	for name := range sa.Counters {
		if _, ok := sb.Counters[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	shown := 0
	for _, name := range names {
		d := sb.Counters[name] - sa.Counters[name]
		if d == 0 {
			continue
		}
		fmt.Printf("  %-52s %+d\n", name, d)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no counter movement)")
	}

	fmt.Println("\n== CPU symbol shift (rank 0, b vs a) ==")
	profOf := func(bun *incident.Bundle) *incident.Profile {
		data := bun.RankFile(0, incident.FileCPU)
		if data == nil {
			return nil
		}
		p, err := incident.ParseProfile(data)
		if err != nil {
			return nil
		}
		return p
	}
	fa, fb := flatFractions(profOf(a), "cpu"), flatFractions(profOf(b), "cpu")
	if len(fa) == 0 || len(fb) == 0 {
		fmt.Println("  (missing rank-0 CPU profiles)")
		return nil
	}
	type shift struct {
		sym string
		d   float64
	}
	var shifts []shift
	for sym, f := range fb {
		shifts = append(shifts, shift{sym, f - fa[sym]})
	}
	for sym, f := range fa {
		if _, ok := fb[sym]; !ok {
			shifts = append(shifts, shift{sym, -f})
		}
	}
	sort.Slice(shifts, func(i, j int) bool {
		ai, aj := shifts[i].d, shifts[j].d
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return shifts[i].sym < shifts[j].sym
	})
	if len(shifts) > 8 {
		shifts = shifts[:8]
	}
	for _, s := range shifts {
		fmt.Printf("  %+6.1fpp  %s\n", s.d*100, s.sym)
	}
	return nil
}
