// Command lci-top is a live terminal view of a running cluster's health,
// in the spirit of top(1): point it at rank 0's telemetry endpoint (the
// -metrics-addr a launcher printed) and it polls /debug/health.json,
// rendering the cluster judgment, a per-rank table (status, heartbeat age,
// superstep progress, barrier skew, per-shard progress-poll rates), the
// active alerts, and the fastest-moving metric rates.
//
// Usage:
//
//	lci-top -addr 127.0.0.1:9380             # refresh every second
//	lci-top -addr 127.0.0.1:9380 -interval 250ms
//	lci-top -addr 127.0.0.1:9380 -once       # one frame, no screen control (CI)
//	lci-top -addr 127.0.0.1:9380 -once -json # raw /debug/health.json payload
//
// Exit code: with -once, 0 when the cluster judgment is OK and 1 otherwise,
// so scripts can gate on it like /healthz. -json (implies -once) emits the
// raw health payload instead of the rendered frame, for jq pipelines and
// log archival; the exit-code contract is the same.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"lcigraph/internal/health"
)

type payload struct {
	View   health.View               `json:"view"`
	Series map[string][]health.Point `json:"series"`
	Links  map[string]string         `json:"links,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9380", "rank 0 telemetry endpoint (host:port)")
	interval := flag.Duration("interval", time.Second, "refresh period")
	once := flag.Bool("once", false, "render one frame without screen control and exit (CI-friendly)")
	asJSON := flag.Bool("json", false, "emit the raw health payload as JSON and exit (implies -once)")
	flag.Parse()

	url := "http://" + *addr + "/debug/health.json"
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		p, err := fetch(client, url)
		var frame string
		if err != nil {
			frame = fmt.Sprintf("lci-top: %v\n", err)
		} else if *asJSON {
			out, merr := json.MarshalIndent(p, "", "  ")
			if merr != nil {
				err, frame = merr, fmt.Sprintf("lci-top: %v\n", merr)
			} else {
				frame = string(out) + "\n"
			}
		} else {
			frame = render(p)
		}
		if *once || *asJSON {
			fmt.Print(frame)
			if err != nil || p.View.Status != health.StatusOK {
				os.Exit(1)
			}
			return
		}
		// Home + clear-to-end keeps the frame flicker-free on every ANSI
		// terminal without pulling in a TUI dependency.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (payload, error) {
	var p payload
	resp, err := client.Get(url)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return p, json.NewDecoder(resp.Body).Decode(&p)
}

// render draws one frame.
func render(p payload) string {
	v := p.View
	var b strings.Builder
	fmt.Fprintf(&b, "lci-top — cluster %s  ranks=%d tick=%d alerts_active=%d alerts_fired=%d  %s\n",
		statusCell(v.Status), v.Ranks, v.Tick, len(v.Alerts), v.FiredTotal,
		time.Unix(0, v.NowNs).Format("15:04:05"))
	fmt.Fprintf(&b, "%s\n", strings.Repeat("─", 78))

	fmt.Fprintf(&b, "%-5s %-10s %8s %8s %10s %6s  %s\n",
		"RANK", "STATUS", "AGE", "ROUNDS", "BARRIER", "SKEW", "POLLS/S (per shard)")
	for _, r := range v.RanksView {
		age := "-"
		if r.Rank != v.Rank {
			age = fmt.Sprintf("%.1fs", float64(r.AgeMs)/1000)
		}
		skew := "-"
		if r.Skew > 0 {
			skew = fmt.Sprintf("%.2fx", r.Skew)
		}
		rates := make([]string, len(r.PollRate))
		for i, pr := range r.PollRate {
			rates[i] = humanRate(pr)
		}
		fmt.Fprintf(&b, "%-5d %-10s %8s %8d %9dms %6s  %s\n",
			r.Rank, statusCell(r.Status), age, r.Rounds, r.BarrierMs, skew,
			strings.Join(rates, " "))
	}

	if len(v.Alerts) > 0 {
		fmt.Fprintf(&b, "\nACTIVE ALERTS\n")
		for _, a := range v.Alerts {
			since := time.Since(time.Unix(0, a.SinceNs)).Truncate(time.Second)
			fmt.Fprintf(&b, "  [%s] %-16s rank=%d shard=%d for %-8s %s\n",
				a.Severity, a.Name, a.Rank, a.Shard, since, a.Detail)
		}
	}

	if len(v.TopRates) > 0 {
		fmt.Fprintf(&b, "\nTOP RATES\n")
		for _, r := range v.TopRates {
			fmt.Fprintf(&b, "  %-58s %12s/s %s\n", r.Name, humanRate(r.PerSec), spark(p.Series[r.Name+":rate"]))
		}
	}
	if v.SeriesDropped > 0 {
		fmt.Fprintf(&b, "\n(%d series beyond the cap were dropped)\n", v.SeriesDropped)
	}
	return b.String()
}

func statusCell(s health.Status) string { return s.String() }

// humanRate renders events/s compactly (1.2k, 3.4M).
func humanRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// spark renders a series' recent trajectory as a block-character sparkline.
func spark(pts []health.Point) string {
	const blocks = "▁▂▃▄▅▆▇█"
	if len(pts) == 0 {
		return ""
	}
	if len(pts) > 32 {
		pts = pts[len(pts)-32:]
	}
	lo, hi := pts[0].V, pts[0].V
	for _, p := range pts {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	var b strings.Builder
	for _, p := range pts {
		i := 0
		if hi > lo {
			i = int((p.V - lo) / (hi - lo) * 7)
		}
		b.WriteRune([]rune(blocks)[i])
	}
	return b.String()
}
