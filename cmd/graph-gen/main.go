// Command graph-gen generates the paper-substitute input graphs (Table I)
// and reports their properties, optionally persisting them in the binary
// CSR format.
//
// Usage:
//
//	graph-gen -table1 [-scale N]            # print Table I for all inputs
//	graph-gen -name rmat -scale 16 -out g.csr
package main

import (
	"flag"
	"fmt"
	"os"

	"lcigraph/internal/graph"
	"lcigraph/internal/partition"
)

func main() {
	name := flag.String("name", "", "input to generate: web, kron or rmat")
	scale := flag.Int("scale", 12, "log2 of the vertex count")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "write binary CSR to this file")
	table1 := flag.Bool("table1", false, "print Table I for all three inputs")
	partStats := flag.Int("partition-stats", 0, "if >0, also report partitioning metrics for this many hosts")
	flag.Parse()

	if *table1 {
		fmt.Printf("Table I substitutes at scale %d (paper: clueweb12 / kron30 / rmat28)\n", *scale)
		for _, n := range graph.Inputs() {
			g := graph.Named(n, *scale, *seed)
			fmt.Println(" ", graph.Analyze(n, g))
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "need -name or -table1")
		os.Exit(2)
	}
	g := graph.Named(*name, *scale, *seed)
	fmt.Println(graph.Analyze(*name, g))
	if *partStats > 0 {
		for _, pol := range []partition.Policy{partition.EdgeCut, partition.EdgeCutByDst, partition.VertexCut} {
			pt := partition.Build(g, *partStats, pol)
			fmt.Println(" ", pt.MeasureMetrics())
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := g.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
