// Command graph-run executes one distributed graph-analytics run: an
// application (bfs, cc, sssp, pagerank) on a framework (abelian, gemini)
// with a communication layer (lci, mpi-probe, mpi-rma) over a generated
// input, and reports timing, memory and round counts — one cell of the
// paper's Figs. 3/4/6 and Tables II/IV.
//
// Usage:
//
//	graph-run -app pagerank -framework abelian -layer lci -graph rmat -scale 12 -hosts 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lcigraph/internal/bench"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/mpi"
	"lcigraph/internal/trace"
)

func main() {
	app := flag.String("app", "bfs", "application: bfs, cc, sssp or pagerank")
	framework := flag.String("framework", "abelian", "framework: abelian or gemini")
	layer := flag.String("layer", "lci", "communication layer: lci, mpi-probe or mpi-rma")
	gname := flag.String("graph", "rmat", "input: web, kron or rmat")
	scale := flag.Int("scale", 12, "log2 vertex count")
	seed := flag.Int64("seed", 42, "generator seed")
	hosts := flag.Int("hosts", 4, "simulated hosts")
	threads := flag.Int("threads", 2, "compute threads per host")
	source := flag.Uint("source", 1, "bfs/sssp source vertex")
	prIters := flag.Int("pr-iters", 10, "pagerank iterations")
	profName := flag.String("profile", "omnipath", "NIC profile: omnipath or infiniband")
	implName := flag.String("impl", "intelmpi", "MPI implementation profile")
	verify := flag.Bool("verify", false, "check the result against the single-host oracle")
	traceCSV := flag.String("trace", "", "write a per-round CSV timeline to this file (abelian only)")
	flag.Parse()

	var prof fabric.Profile
	switch *profName {
	case "omnipath":
		prof = fabric.OmniPath()
	case "infiniband":
		prof = fabric.InfiniBand()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profName)
		os.Exit(2)
	}
	var impl mpi.Impl
	for _, im := range mpi.Impls() {
		if im.Name == *implName {
			impl = im
		}
	}
	if impl.Name == "" {
		fmt.Fprintf(os.Stderr, "unknown MPI implementation %q\n", *implName)
		os.Exit(2)
	}

	fmt.Printf("generating %s scale %d...\n", *gname, *scale)
	g := graph.Named(*gname, *scale, *seed)
	fmt.Println(" ", graph.Analyze(*gname, g))

	cfg := bench.Config{
		App: *app, Layer: *layer, Hosts: *hosts, Threads: *threads,
		Source: uint32(*source), PRIters: *prIters, Profile: prof, Impl: impl,
	}
	var tr *trace.Trace
	if *traceCSV != "" {
		tr = trace.New()
		cfg.Trace = tr
	}
	fmt.Printf("running %s on %s with %s, P=%d T=%d...\n",
		*app, *framework, *layer, *hosts, *threads)

	var res *bench.Result
	start := time.Now()
	switch *framework {
	case "abelian":
		res = bench.RunAbelian(g, cfg)
	case "gemini":
		res = bench.RunGemini(g, cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown framework %q\n", *framework)
		os.Exit(2)
	}
	_ = start

	fmt.Printf("  total time:        %v\n", res.Wall)
	fmt.Printf("  rounds:            %d\n", res.Rounds)
	fmt.Printf("  compute (max):     %v\n", res.MaxCompute())
	fmt.Printf("  comm, non-overlap: %v\n", res.MaxComm())
	fmt.Printf("  comm buffers:      max %d B, min %d B across hosts\n", res.MemMax, res.MemMin)
	fmt.Printf("  wire traffic:      %d frames (%d B), %d puts (%d B), %d backpressure retries\n",
		res.Net.Frames, res.Net.FrameBytes, res.Net.Puts, res.Net.PutBytes, res.Net.SendRetries)

	if *verify {
		if err := bench.Verify(g, res); err != nil {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("  verify:            OK (matches single-host oracle)")
	}

	if tr != nil {
		f, err := os.Create(*traceCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := tr.Summarize()
		fmt.Printf("  trace:             %d rounds -> %s (Σ max-across-hosts: compute %v, comm %v)\n",
			s.Rounds, *traceCSV, s.Compute, s.Comm)
	}
}
