// Delta-stepping demonstrates the priority-ordered SSSP extension on the
// Abelian runtime: the bucketed schedule the Galois system actually uses,
// compared against the plain data-driven (Bellman-Ford-style) rounds the
// paper benchmarks. Both must produce Dijkstra's distances; delta-stepping
// wastes fewer relaxations on weighted graphs at the cost of more
// synchronization rounds.
//
// Run with: go run ./examples/delta-stepping
package main

import (
	"fmt"
	"time"

	"lcigraph/internal/abelian"
	"lcigraph/internal/apps"
	"lcigraph/internal/cluster"
	"lcigraph/internal/comm"
	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/partition"
)

func main() {
	const (
		scale  = 11
		hosts  = 4
		source = 2
	)
	g := graph.Named("rmat", scale, 21) // weighted, skewed
	fmt.Println("input:", graph.Analyze("rmat", g))
	oracle := apps.OracleSSSP(g, source)

	for _, mode := range []string{"bellman-ford rounds", "delta-stepping"} {
		pt := partition.Build(g, hosts, partition.VertexCut)
		fab := fabric.New(hosts, fabric.OmniPath())
		dist := make([]uint64, g.N)
		rounds := make([]int, hosts)

		start := time.Now()
		cluster.Run(hosts, 2, func(r int) comm.Layer {
			return comm.NewLCILayer(fab.Endpoint(r), lci.Options{PoolPackets: 64 * hosts})
		}, func(h *cluster.Host) {
			rt := abelian.New(h, pt.Hosts[h.Rank], partition.VertexCut)
			var f *abelian.Field
			var r int
			if mode == "delta-stepping" {
				f, r = apps.SSSPDelta(rt, source, 16)
			} else {
				f, r = apps.SSSP(rt, source)
			}
			rounds[h.Rank] = r
			hg := rt.HG
			for m := 0; m < hg.NumMasters; m++ {
				dist[hg.L2G[m]] = f.Get(uint32(m))
			}
		})
		elapsed := time.Since(start)

		bad := 0
		for v := range oracle {
			if dist[v] != oracle[v] {
				bad++
			}
		}
		status := "matches Dijkstra"
		if bad > 0 {
			status = fmt.Sprintf("%d MISMATCHES", bad)
		}
		fmt.Printf("%-22s %10v  %3d rounds  [%s]\n", mode, elapsed, rounds[0], status)
	}
}
