// Layers runs the same workload (sssp on a web-like graph) across all three
// Abelian communication layers — LCI, MPI-Probe and MPI-RMA — and prints a
// side-by-side comparison of execution time and communication-buffer
// footprint: Figs. 3 and 5 in miniature.
//
// Run with: go run ./examples/layers
// Or over real loopback UDP sockets: go run ./examples/layers -transport=udp
package main

import (
	"flag"
	"fmt"

	"lcigraph/internal/bench"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
)

func main() {
	transport := flag.String("transport", "sim", "fabric backend: sim | udp")
	flag.Parse()
	const (
		scale  = 11
		hosts  = 4
		source = 3
	)
	g := graph.Named("web", scale, 13)
	fmt.Println("input:", graph.Analyze("web", g))
	fmt.Println()
	fmt.Printf("%-10s %12s %8s %12s %14s %14s\n",
		"layer", "total", "rounds", "comm(max)", "mem max (B)", "mem min (B)")

	for _, layer := range bench.Layers() {
		cfg := bench.Config{
			App: "sssp", Layer: layer,
			Hosts: hosts, Threads: 2, Source: source,
			Profile:   fabric.OmniPath(),
			Transport: *transport,
		}
		res := bench.RunAbelian(g, cfg)
		if err := bench.Verify(g, res); err != nil {
			fmt.Printf("%-10s VERIFY FAILED: %v\n", layer, err)
			continue
		}
		fmt.Printf("%-10s %12v %8d %12v %14d %14d\n",
			layer, res.Wall, res.Rounds, res.MaxComm(), res.MemMax, res.MemMin)
	}
	fmt.Println("\nExpected shape (paper Figs. 3 & 5): LCI fastest or tied;")
	fmt.Println("MPI-RMA footprint far above LCI, max ≈ min (pre-allocated windows).")
}
