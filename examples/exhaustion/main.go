// Exhaustion demonstrates §III-B's motivation for both the buffered MPI
// layer and LCI's retriable failures: under Abelian's all-to-all pattern,
// a producer that outruns its consumer kills a naive MPI program (internal
// buffer exhaustion — "MPI may either seg-fault or hang"), while the same
// pressure against LCI surfaces as SEND-ENQ returning false, which the
// caller simply retries.
//
// Run with: go run ./examples/exhaustion
package main

import (
	"errors"
	"fmt"
	"runtime"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/mpi"
)

func main() {
	// A deliberately starved network: shallow rings, small MPI buffers.
	prof := fabric.TestProfile()
	prof.RingDepth = 8
	impl := mpi.TestImpl()
	impl.UnexpectedCap = 8 << 10
	impl.PendingSendCap = 32

	const messages = 2000
	payload := make([]byte, 256)

	// --- Naive MPI: blast non-blocking sends at a rank that is busy
	// computing and never receives. ---
	w := mpi.NewWorld(2, prof, impl, mpi.ThreadFunneled)
	sender, receiver := w.Comm(0), w.Comm(1)
	var fatal error
	sent := 0
	for i := 0; i < messages; i++ {
		if _, err := sender.Isend(payload, 1, 0); err != nil {
			fatal = err
			break
		}
		sent++
		// The receiver's progress engine runs (as a real MPI's would), but
		// the application never posts receives.
		receiver.Progress()
	}
	fmt.Printf("naive MPI: died after %d sends: %v\n", sent, fatal)
	if !errors.Is(fatal, mpi.ErrExhausted) {
		fmt.Println("  (expected ErrExhausted!)")
	}

	// --- LCI: the same pressure. SEND-ENQ fails retriably; once the
	// consumer starts draining, everything flows. ---
	fab2 := fabric.New(2, prof)
	a := lci.NewEndpoint(fab2.Endpoint(0), lci.Options{PoolPackets: 16})
	b := lci.NewEndpoint(fab2.Endpoint(1), lci.Options{})
	stop := make(chan struct{})
	defer close(stop)
	go a.Serve(stop)
	go b.Serve(stop)
	wkr := a.Pool().RegisterWorker()

	retries := 0
	delivered := 0
	go func() {
		// The consumer wakes up late, then drains at its own pace.
		for delivered < messages {
			if r, ok := b.RecvDeq(); ok {
				r.Wait(nil)
				r.Release()
				delivered++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < messages; i++ {
		for {
			if _, ok := a.SendEnq(wkr, 1, 0, payload); ok {
				break
			}
			retries++ // not fatal: just try again
			runtime.Gosched()
		}
	}
	for delivered < messages {
		runtime.Gosched()
	}
	fmt.Printf("LCI: all %d messages delivered; back-pressure surfaced as %d retriable SEND-ENQ failures\n",
		messages, retries)
}
