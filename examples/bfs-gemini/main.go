// BFS on the Gemini-style engine, comparing its two communication backends
// (§IV-B1, Fig. 4): per-thread streaming over MPI_THREAD_MULTIPLE versus
// the LCI Queue.
//
// Run with: go run ./examples/bfs-gemini
package main

import (
	"fmt"

	"lcigraph/internal/apps"
	"lcigraph/internal/bench"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
)

func main() {
	const (
		scale  = 11
		hosts  = 4
		source = 1
	)
	g := graph.Named("kron", scale, 7)
	fmt.Println("input:", graph.Analyze("kron", g))

	oracle := apps.OracleBFS(g, source)
	reached := 0
	for _, d := range oracle {
		if d != apps.Inf {
			reached++
		}
	}
	fmt.Printf("bfs from %d reaches %d/%d vertices\n\n", source, reached, g.N)

	for _, layer := range bench.StreamKinds() {
		cfg := bench.Config{
			App: "bfs", Layer: layer,
			Hosts: hosts, Threads: 2, Source: source,
			Profile: fabric.OmniPath(),
		}
		res := bench.RunGemini(g, cfg)
		status := "OK"
		if err := bench.Verify(g, res); err != nil {
			status = "MISMATCH: " + err.Error()
		}
		fmt.Printf("gemini + %-9s  total %10v  rounds %2d  comm(max) %10v  [%s]\n",
			layer, res.Wall, res.Rounds, res.MaxComm(), status)
	}
}
