// Pagerank on the Abelian-style runtime with the LCI communication layer:
// the paper's most communication-intensive workload (Fig. 3 shows LCI's
// largest wins on pagerank because every round synchronizes every vertex).
//
// The example partitions an RMAT graph across 4 simulated hosts with a
// vertex cut, runs 10 rounds, verifies against the single-host oracle, and
// prints the per-host compute/communication breakdown plus the top pages.
//
// Run with: go run ./examples/pagerank
package main

import (
	"fmt"
	"sort"

	"lcigraph/internal/bench"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
)

func main() {
	const (
		scale = 11
		hosts = 4
		iters = 10
	)
	g := graph.Named("rmat", scale, 42)
	fmt.Println("input:", graph.Analyze("rmat", g))

	cfg := bench.Config{
		App: "pagerank", Layer: bench.LCI,
		Hosts: hosts, Threads: 2, PRIters: iters,
		Profile: fabric.OmniPath(),
	}
	res := bench.RunAbelian(g, cfg)

	fmt.Printf("\npagerank: %d iterations on %d hosts in %v\n", iters, hosts, res.Wall)
	for h := range res.Compute {
		fmt.Printf("  host %d: compute %10v   non-overlapped comm %10v\n",
			h, res.Compute[h], res.Comm[h])
	}
	fmt.Printf("  comm buffers: max %d B, min %d B across hosts\n", res.MemMax, res.MemMin)

	if err := bench.Verify(g, res); err != nil {
		fmt.Println("VERIFY FAILED:", err)
		return
	}
	fmt.Println("  verified against the single-host oracle")

	type vr struct {
		v int
		r float64
	}
	top := make([]vr, g.N)
	for v, r := range res.Ranks {
		top[v] = vr{v, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("\ntop 5 vertices by rank:")
	for _, t := range top[:5] {
		fmt.Printf("  v%-6d rank %.6f (in-degree matters!)\n", t.v, t.r)
	}
}
