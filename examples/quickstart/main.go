// Quickstart: the LCI Queue interface on two hosts.
//
// It demonstrates the runtime's core ideas from the paper:
//   - SEND-ENQ / RECV-DEQ that fail retriably instead of crashing,
//   - completion by polling a request's status flag,
//   - the eager protocol for small messages and the rendezvous
//     protocol for large ones (RTS/RTR/RDMA put on the simulator;
//     RTS/RTR/fragment stream on transports without RDMA),
//   - the first-packet policy (no tag matching or ordering).
//
// Run with: go run ./examples/quickstart
// Or over real loopback UDP sockets: go run ./examples/quickstart -transport=udp
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
	"lcigraph/internal/netfabric"
)

func main() {
	transport := flag.String("transport", "sim", "fabric backend: sim | udp")
	flag.Parse()

	// A two-host fabric: the Omni-Path-like simulator profile, or two real
	// UDP sockets on loopback — same verbs, same code from here on.
	var feps [2]fabric.Provider
	switch *transport {
	case "sim":
		fab := fabric.New(2, fabric.OmniPath())
		feps[0], feps[1] = fab.Endpoint(0), fab.Endpoint(1)
	case "udp":
		provs, err := netfabric.NewLoopbackGroup(2, netfabric.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickstart:", err)
			os.Exit(1)
		}
		defer netfabric.CloseGroup(provs)
		feps[0], feps[1] = provs[0], provs[1]
	default:
		fmt.Fprintf(os.Stderr, "quickstart: unknown transport %q\n", *transport)
		os.Exit(2)
	}
	alice := lci.NewEndpoint(feps[0], lci.Options{})
	bob := lci.NewEndpoint(feps[1], lci.Options{})

	// Each host runs one communication server (Algorithm 3).
	stop := make(chan struct{})
	defer close(stop)
	go alice.Serve(stop)
	go bob.Serve(stop)

	// Compute threads register with the packet pool for locality.
	wa := alice.Pool().RegisterWorker()

	// 1. Eager send: completes as soon as the payload is staged.
	small := []byte("hello over the eager protocol")
	req, ok := alice.SendEnq(wa, 1, 7, small)
	for !ok {
		// Pool exhausted would be a retriable failure, never fatal.
		runtime.Gosched()
		req, ok = alice.SendEnq(wa, 1, 7, small)
	}
	fmt.Printf("eager send submitted; done=%v (buffer reusable immediately)\n", req.Done())

	// 2. Rendezvous send: 64 KiB goes RTS → RTR → RDMA put, or RTS → RTR →
	// fragment stream when the transport has no RDMA (UDP).
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i)
	}
	bigReq, ok := alice.SendEnq(wa, 1, 8, big)
	for !ok {
		runtime.Gosched()
		bigReq, ok = alice.SendEnq(wa, 1, 8, big)
	}
	fmt.Printf("rendezvous send submitted; done=%v (waits for the payload transfer)\n", bigReq.Done())

	// Bob receives in arrival order — the first-packet policy. No source
	// or tag matching happens; the tag is carried, not matched.
	for received := 0; received < 2; {
		r, ok := bob.RecvDeq()
		if !ok {
			runtime.Gosched()
			continue
		}
		// Completion is a flag check, not a function call.
		r.Wait(nil)
		fmt.Printf("bob received %d bytes from rank %d with tag %d\n", r.Size, r.Rank, r.Tag)
		r.Release() // recycle the pooled wire frame
		received++
	}

	// The sender's rendezvous request completed once the payload landed.
	bigReq.Wait(nil)
	fmt.Printf("rendezvous send now done=%v\n", bigReq.Done())

	st := alice.Stats()
	fmt.Printf("alice sent %d eager + %d rendezvous messages (%d retriable failures)\n",
		st.EagerSends, st.RendezvousSends, st.SendFailures)
	if *transport == "udp" {
		ns := feps[0].Stats()
		fmt.Printf("alice transport: frames=%d retransmits=%d acks=%d\n",
			ns.SendFrames, ns.Retransmits, ns.AcksSent)
	}
	fmt.Println("quickstart OK")
}
