// Quickstart: the LCI Queue interface on two simulated hosts.
//
// It demonstrates the runtime's core ideas from the paper:
//   - SEND-ENQ / RECV-DEQ that fail retriably instead of crashing,
//   - completion by polling a request's status flag,
//   - the eager protocol for small messages and the rendezvous
//     (RTS/RTR/RDMA) protocol for large ones,
//   - the first-packet policy (no tag matching or ordering).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"

	lci "lcigraph/internal/core"
	"lcigraph/internal/fabric"
)

func main() {
	// A two-host fabric with the Omni-Path-like profile.
	fab := fabric.New(2, fabric.OmniPath())
	alice := lci.NewEndpoint(fab.Endpoint(0), lci.Options{})
	bob := lci.NewEndpoint(fab.Endpoint(1), lci.Options{})

	// Each host runs one communication server (Algorithm 3).
	stop := make(chan struct{})
	defer close(stop)
	go alice.Serve(stop)
	go bob.Serve(stop)

	// Compute threads register with the packet pool for locality.
	wa := alice.Pool().RegisterWorker()

	// 1. Eager send: completes as soon as the payload is staged.
	small := []byte("hello over the eager protocol")
	req, ok := alice.SendEnq(wa, 1, 7, small)
	for !ok {
		// Pool exhausted would be a retriable failure, never fatal.
		runtime.Gosched()
		req, ok = alice.SendEnq(wa, 1, 7, small)
	}
	fmt.Printf("eager send submitted; done=%v (buffer reusable immediately)\n", req.Done())

	// 2. Rendezvous send: 64 KiB goes RTS → RTR → RDMA put.
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i)
	}
	bigReq, ok := alice.SendEnq(wa, 1, 8, big)
	for !ok {
		runtime.Gosched()
		bigReq, ok = alice.SendEnq(wa, 1, 8, big)
	}
	fmt.Printf("rendezvous send submitted; done=%v (waits for the RDMA put)\n", bigReq.Done())

	// Bob receives in arrival order — the first-packet policy. No source
	// or tag matching happens; the tag is carried, not matched.
	for received := 0; received < 2; {
		r, ok := bob.RecvDeq()
		if !ok {
			runtime.Gosched()
			continue
		}
		// Completion is a flag check, not a function call.
		r.Wait(nil)
		fmt.Printf("bob received %d bytes from rank %d with tag %d\n", r.Size, r.Rank, r.Tag)
		r.Release() // recycle the pooled wire frame
		received++
	}

	// The sender's rendezvous request completed once the put landed.
	bigReq.Wait(nil)
	fmt.Printf("rendezvous send now done=%v\n", bigReq.Done())

	st := alice.Stats()
	fmt.Printf("alice sent %d eager + %d rendezvous messages (%d retriable failures)\n",
		st.EagerSends, st.RendezvousSends, st.SendFailures)
	fmt.Println("quickstart OK")
}
