package lcigraph

// One benchmark per paper table/figure (DESIGN.md §4). Each uses small
// default scales so `go test -bench=.` completes on a laptop; use
// cmd/experiments for the full sweeps.

import (
	"fmt"
	"testing"

	"lcigraph/internal/bench"
	"lcigraph/internal/fabric"
	"lcigraph/internal/graph"
	"lcigraph/internal/mpi"
)

const (
	benchScale = 10
	benchHosts = 4
)

func benchGraph(name string) *graph.Graph { return graph.Named(name, benchScale, 42) }

// BenchmarkFig1Latency measures one-way 8B latency per interface.
func BenchmarkFig1Latency(b *testing.B) {
	for _, iface := range bench.Ifaces() {
		for _, size := range []int{8, 4096} {
			b.Run(fmt.Sprintf("%s/%dB", iface, size), func(b *testing.B) {
				lat := bench.MicroLatency(iface, size, b.N, fabric.OmniPath(), mpi.IntelMPI())
				b.ReportMetric(float64(lat.Nanoseconds()), "ns/msg")
			})
		}
	}
}

// BenchmarkFig1Rate measures aggregate message rate vs sender threads.
func BenchmarkFig1Rate(b *testing.B) {
	for _, iface := range bench.Ifaces() {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/%dthreads", iface, threads), func(b *testing.B) {
				per := b.N/threads + 1
				rate := bench.MicroRate(iface, threads, per, 8, fabric.OmniPath(), mpi.IntelMPI())
				b.ReportMetric(rate, "msgs/s")
			})
		}
	}
}

// BenchmarkTable1Gen regenerates the Table I inputs.
func BenchmarkTable1Gen(b *testing.B) {
	for _, name := range graph.Inputs() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graph.Named(name, benchScale, 42)
				p := graph.Analyze(name, g)
				b.ReportMetric(float64(p.E), "edges")
			}
		})
	}
}

func abelianCase(b *testing.B, app, gname, layer string) {
	b.Helper()
	g := benchGraph(gname)
	cfg := bench.Config{App: app, Layer: layer, Hosts: benchHosts, Threads: 2,
		Source: 1, PRIters: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bench.RunAbelian(g, cfg)
		// ns/op includes per-iteration setup (partitioning, fabric, pool
		// allocation); wall-ns is the app run itself, the number the
		// experiment harness reports.
		b.ReportMetric(float64(res.Wall.Nanoseconds()), "wall-ns")
		b.ReportMetric(float64(res.MaxComm().Nanoseconds()), "comm-ns")
	}
}

// BenchmarkFig3 regenerates the Abelian execution-time matrix.
func BenchmarkFig3(b *testing.B) {
	for _, app := range bench.Apps() {
		for _, gname := range graph.Inputs() {
			for _, layer := range bench.Layers() {
				b.Run(fmt.Sprintf("%s/%s/%s", app, gname, layer), func(b *testing.B) {
					abelianCase(b, app, gname, layer)
				})
			}
		}
	}
}

// BenchmarkFig4 regenerates the Gemini execution-time comparison.
func BenchmarkFig4(b *testing.B) {
	for _, app := range bench.Apps() {
		for _, layer := range bench.StreamKinds() {
			b.Run(fmt.Sprintf("%s/%s", app, layer), func(b *testing.B) {
				g := benchGraph("kron")
				cfg := bench.Config{App: app, Layer: layer, Hosts: benchHosts,
					Threads: 2, Source: 1, PRIters: 5}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := bench.RunGemini(g, cfg)
					b.ReportMetric(float64(res.Wall.Nanoseconds()), "wall-ns")
					b.ReportMetric(float64(res.MaxComm().Nanoseconds()), "comm-ns")
				}
			})
		}
	}
}

// BenchmarkFig5Mem reports the communication-buffer footprint per layer.
func BenchmarkFig5Mem(b *testing.B) {
	for _, layer := range []string{bench.LCI, bench.MPIRMA} {
		b.Run(layer, func(b *testing.B) {
			g := benchGraph("rmat")
			cfg := bench.Config{App: "pagerank", Layer: layer, Hosts: benchHosts,
				Threads: 2, PRIters: 5}
			for i := 0; i < b.N; i++ {
				res := bench.RunAbelian(g, cfg)
				b.ReportMetric(float64(res.MemMax), "maxB")
				b.ReportMetric(float64(res.MemMin), "minB")
			}
		})
	}
}

// BenchmarkFig6Breakdown reports compute vs non-overlapped comm per layer
// on kron.
func BenchmarkFig6Breakdown(b *testing.B) {
	for _, app := range bench.Apps() {
		for _, layer := range bench.Layers() {
			b.Run(fmt.Sprintf("%s/%s", app, layer), func(b *testing.B) {
				g := benchGraph("kron")
				cfg := bench.Config{App: app, Layer: layer, Hosts: benchHosts,
					Threads: 2, Source: 1, PRIters: 5}
				for i := 0; i < b.N; i++ {
					res := bench.RunAbelian(g, cfg)
					b.ReportMetric(float64(res.Wall.Nanoseconds()), "wall-ns")
					b.ReportMetric(float64(res.MaxCompute().Nanoseconds()), "compute-ns")
					b.ReportMetric(float64(res.MaxComm().Nanoseconds()), "comm-ns")
				}
			})
		}
	}
}

// BenchmarkTable2 compares NIC profiles (Stampede2 Omni-Path vs Stampede1
// InfiniBand) on Abelian rmat.
func BenchmarkTable2(b *testing.B) {
	for _, prof := range []fabric.Profile{fabric.OmniPath(), fabric.InfiniBand()} {
		for _, layer := range []string{bench.LCI, bench.MPIProbe} {
			b.Run(fmt.Sprintf("%s/%s", prof.Name, layer), func(b *testing.B) {
				g := benchGraph("rmat")
				cfg := bench.Config{App: "cc", Layer: layer, Hosts: benchHosts,
					Threads: 2, Profile: prof}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := bench.RunAbelian(g, cfg)
					b.ReportMetric(float64(res.Wall.Nanoseconds()), "wall-ns")
				}
			})
		}
	}
}

// BenchmarkAllToAll measures aggregate small-message rate with every host
// blasting every other host (the "many concurrent pending receives" claim).
func BenchmarkAllToAll(b *testing.B) {
	for _, iface := range bench.Ifaces() {
		for _, hosts := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s/P%d", iface, hosts), func(b *testing.B) {
				per := b.N/(hosts*(hosts-1)) + 1
				rate := bench.AllToAllRate(iface, hosts, per, 8, fabric.OmniPath(), mpi.IntelMPI())
				b.ReportMetric(rate, "msgs/s")
			})
		}
	}
}

// BenchmarkPortability runs cc across the three transports on LCI.
func BenchmarkPortability(b *testing.B) {
	g := benchGraph("rmat")
	for _, prof := range []fabric.Profile{fabric.OmniPath(), fabric.InfiniBand(), fabric.Sockets()} {
		b.Run(prof.Name, func(b *testing.B) {
			cfg := bench.Config{App: "cc", Layer: bench.LCI, Hosts: benchHosts,
				Threads: 2, Profile: prof}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.RunAbelian(g, cfg)
			}
		})
	}
}

// BenchmarkThreadScaling sweeps compute threads per host on LCI and probe.
func BenchmarkThreadScaling(b *testing.B) {
	g := benchGraph("kron")
	for _, layer := range []string{bench.LCI, bench.MPIProbe} {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/T%d", layer, threads), func(b *testing.B) {
				cfg := bench.Config{App: "pagerank", Layer: layer, Hosts: benchHosts,
					Threads: threads, PRIters: 5}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := bench.RunAbelian(g, cfg)
					b.ReportMetric(float64(res.Wall.Nanoseconds()), "wall-ns")
				}
			})
		}
	}
}

// BenchmarkAblationFused compares the standard Exchange path against the
// fused gather-send integration (DESIGN.md §5 / paper §VI future work).
func BenchmarkAblationFused(b *testing.B) {
	g := benchGraph("rmat")
	for _, fused := range []bool{false, true} {
		name := "exchange"
		if fused {
			name = "fused"
		}
		b.Run(name, func(b *testing.B) {
			cfg := bench.Config{App: "pagerank", Layer: bench.LCI, Hosts: benchHosts,
				Threads: 2, PRIters: 5, Fused: fused}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.RunAbelian(g, cfg)
			}
		})
	}
}

// BenchmarkAblationOrdering quantifies MPI's non-overtaking guarantee.
func BenchmarkAblationOrdering(b *testing.B) {
	g := benchGraph("rmat")
	for _, noOrder := range []bool{false, true} {
		name := "ordered"
		if noOrder {
			name = "unordered"
		}
		b.Run(name, func(b *testing.B) {
			impl := mpi.IntelMPI()
			impl.UnsafeNoOrdering = noOrder
			cfg := bench.Config{App: "pagerank", Layer: bench.MPIProbe, Hosts: benchHosts,
				Threads: 2, PRIters: 5, Impl: impl}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.RunAbelian(g, cfg)
			}
		})
	}
}

// BenchmarkAblationAggregation quantifies the probe layer's buffered
// network layer versus naive per-message sends.
func BenchmarkAblationAggregation(b *testing.B) {
	g := benchGraph("rmat")
	for _, noAgg := range []bool{false, true} {
		name := "aggregated"
		if noAgg {
			name = "per-message"
		}
		b.Run(name, func(b *testing.B) {
			cfg := bench.Config{App: "pagerank", Layer: bench.MPIProbe, Hosts: benchHosts,
				Threads: 2, PRIters: 5, NoAggregation: noAgg}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.RunAbelian(g, cfg)
			}
		})
	}
}

// BenchmarkTable4 compares MPI implementation profiles against LCI.
func BenchmarkTable4(b *testing.B) {
	g := benchGraph("rmat")
	run := func(b *testing.B, layer string, impl mpi.Impl) {
		cfg := bench.Config{App: "pagerank", Layer: layer, Hosts: benchHosts,
			Threads: 2, PRIters: 5, Impl: impl}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := bench.RunAbelian(g, cfg)
			b.ReportMetric(float64(res.Wall.Nanoseconds()), "wall-ns")
		}
	}
	b.Run("lci", func(b *testing.B) { run(b, bench.LCI, mpi.IntelMPI()) })
	for _, impl := range mpi.Impls() {
		impl := impl
		for _, layer := range []string{bench.MPIProbe, bench.MPIRMA} {
			layer := layer
			b.Run(fmt.Sprintf("%s/%s", impl.Name, layer), func(b *testing.B) {
				run(b, layer, impl)
			})
		}
	}
}
