// Package lcigraph reproduces "A Lightweight Communication Runtime for
// Distributed Graph Analytics" (Dang et al., IPDPS 2018) as a Go library.
//
// The paper's contribution — the LCI communication runtime — lives in
// internal/core. The systems it is evaluated against and integrated with
// are built from scratch in the other internal packages: a simulated NIC
// fabric (internal/fabric), an MPI-like baseline with two-sided and
// one-sided layers (internal/mpi, internal/comm), Abelian- and Gemini-style
// distributed graph frameworks (internal/abelian, internal/gemini), graph
// generators and partitioners (internal/graph, internal/partition), and the
// four benchmark applications (internal/apps).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for the paper-vs-measured
// record. The benchmarks in bench_test.go regenerate every table and
// figure; cmd/experiments prints them as text reports.
package lcigraph
