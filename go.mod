module lcigraph

go 1.22
